//! `ptb-load`: a closed-loop load generator and smoke checker for the
//! `ptb-serve` daemon.
//!
//! ```text
//! ptb-load --addr HOST:PORT --smoke
//! ptb-load --addr HOST:PORT --xcheck                # codec cross-equivalence probe
//! ptb-load --addr HOST:PORT --shutdown
//! ptb-load --addr HOST:PORT --submit-tws 1,4,8      # background job, prints the ack
//! ptb-load --addr HOST:PORT --poll-job ID           # poll to terminal state
//! ptb-load --cluster N [--cluster-kill]             # self-contained fleet smoke
//! ptb-load --cluster N --cluster-saturate           # backpressure chaos: one worker sheds
//! ptb-load --cluster N --standby --coordinator-kill # HA drill: SIGKILL the active coordinator
//! ptb-load --cluster N --standby --coordinator-fence # HA drill: fence a zombie coordinator
//! ptb-load --soak SECS                              # budget-starved governance soak
//! ptb-load --addr HOST:PORT [--requests N] [--concurrency C]
//!          [--network NAME] [--policy LABEL] [--tw N]
//!          [--codec json|bin] [--keepalive]
//!          [--seed-mode unique|fixed] [--full] [--retries N] [--chaos]
//!          [--label TEXT]
//! ```
//!
//! Smoke mode drives `/healthz`, one quick `/simulate`, and `/metrics`,
//! checking each response; it exits nonzero on any failure (the CI
//! smoke stage runs this). `--xcheck` drives `/simulate` and a sync
//! `/sweep` through *both* codecs over one kept-alive connection —
//! including a pipelined pair — and exits nonzero unless the binary
//! responses decode to byte-identical JSON renderings of the JSON
//! responses (the cross-codec bit-identity contract of
//! `docs/PROTOCOL.md`). `--shutdown` POSTs the `/shutdown` admin
//! route and exits zero iff the daemon acknowledged it. `--submit-tws`
//! submits a background sweep and prints the `{"job": id}` ack;
//! `--poll-job` polls `GET /jobs/{id}` until the job is done (exit 0)
//! or failed (exit 1), printing the final poll body. Load mode runs
//! `C` closed-loop workers (each issues a request, waits for the full
//! response, repeats) until `N` total requests have completed, then
//! prints a JSON summary with throughput and latency percentiles to
//! stdout.
//!
//! `--codec bin` sends requests as binary `PTBW1` frames
//! (`Content-Type: application/x-ptbw`) instead of JSON; `--keepalive`
//! reuses one connection per worker instead of reconnecting per
//! request (reconnecting transparently when the server closes). The
//! 2×2 codec × connection matrix in `BENCH_serve.json` comes from
//! these two flags.
//!
//! Requests retry on connection errors and `503` with exponential
//! backoff and decorrelated jitter, honoring the server's `Retry-After`
//! header (`--retries 0` disables). `--chaos` makes each worker harass
//! the daemon before every real request — dropped connections, short
//! writes, garbage bytes, malformed binary frames — and demands
//! convergence anyway: the run exits nonzero unless *every* request
//! eventually succeeded through the retry loop.
//!
//! `--seed-mode unique` gives every request a distinct seed so each
//! one misses the server's activity cache ("cold"); `fixed` reuses one
//! seed so all but the first hit it ("warm"). Comparing the two
//! isolates what the shared cache buys under load; `BENCH_serve.json`
//! records exactly that comparison.
//!
//! `--cluster N` is the self-contained fleet smoke: it spawns `N`
//! worker daemons plus a `ptb-clusterd` coordinator (sibling binary,
//! found next to this executable) on ephemeral ports, drives a sharded
//! sweep through the coordinator, and exits nonzero unless the cluster
//! response is **byte-identical** to the same sweep answered by a
//! single worker daemon directly. `--cluster-kill` additionally
//! `kill -9`s one worker mid-sweep (each shard is slowed through the
//! `shard_exec` failpoint so the kill reliably lands with work in
//! flight) and demands the reclaimed sweep still match a lone
//! survivor's rows exactly. Both print a one-line JSON summary with
//! wall time and shard throughput; the CI cluster stage runs both.
//!
//! `--standby` turns the fleet into the coordinator-HA drill: the
//! coordinator journals into a real temp directory and `PTB_STANDBYS`
//! (default 1) hot standbys tail it over `GET /journal/tail`. With
//! `--coordinator-kill` the drill SIGKILLs the *coordinator* mid-sweep
//! and demands the promoted standby finish the journaled job with rows
//! identical to a lone worker's — plus fresh sync sweeps through the
//! promoted coordinator that are byte-identical across both codecs.
//! With `--coordinator-fence` the active's tail route goes dark via the
//! `coordinator_pause` failpoint instead of dying: the standby promotes
//! while the old active still dispatches, and the drill demands the
//! zombie's stale-epoch dispatches were rejected by the workers
//! (`fenced_dispatches >= 1`, a worker `epoch_seen >= 2`), that it
//! demoted itself, and that the job still finished via the new active.
//! The poll client follows the `307` + `Location` redirects demoted
//! coordinators answer with (`docs/PROTOCOL.md` §7).
//!
//! `--cluster-saturate` instead strangles worker 0's admission
//! watermark (`PTB_MEM_WATERMARK_BYTES=1`) so it sheds every shard
//! with 503 while staying probe-green, and demands the sweep complete
//! byte-identically via backpressure re-dispatch with **zero**
//! `worker_deaths` — a saturated worker is never falsely declared
//! dead. `--soak SECS` spawns a single budget-starved daemon and
//! drives bursty unique-seed load at it; see `run_soak` for the
//! assertions (evictions and sheds happened, nothing but 503s failed,
//! disk footprints stayed within budget, expired jobs answer the
//! "gone" 404, and results stay bit-identical to an unbudgeted run).

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ptb_bench::SweepRow;
use ptb_serve::client::{self, Connection, RetryPolicy};
use ptb_serve::wire;
use serde::Value;

struct LoadConfig {
    addr: SocketAddr,
    smoke: bool,
    xcheck: bool,
    shutdown: bool,
    submit_tws: Option<Vec<u32>>,
    poll_job: Option<u64>,
    requests: usize,
    concurrency: usize,
    network: String,
    policy: String,
    tw: u32,
    quick: bool,
    binary: bool,
    keepalive: bool,
    seed_unique: bool,
    retries: u32,
    chaos: bool,
    label: String,
    cluster: Option<usize>,
    cluster_kill: bool,
    cluster_saturate: bool,
    standby: bool,
    coordinator_kill: bool,
    coordinator_fence: bool,
    soak: Option<u64>,
}

fn main() {
    let cfg = parse_args();
    if let Some(secs) = cfg.soak {
        if let Err(msg) = run_soak(&cfg, secs) {
            eprintln!("soak FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("soak OK");
        return;
    }
    if let Some(n) = cfg.cluster {
        if let Err(msg) = run_cluster(&cfg, n) {
            eprintln!("cluster FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("cluster OK");
        return;
    }
    if cfg.shutdown {
        match client::request_json(cfg.addr, "POST", "/shutdown", "") {
            Ok((200, _)) => return,
            Ok((status, body)) => {
                eprintln!("shutdown answered {status}: {body}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(tws) = &cfg.submit_tws {
        run_submit(&cfg, tws);
        return;
    }
    if let Some(id) = cfg.poll_job {
        run_poll(&cfg, id);
        return;
    }
    if cfg.smoke {
        if let Err(msg) = run_smoke(&cfg) {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("smoke OK");
        return;
    }
    if cfg.xcheck {
        if let Err(msg) = run_xcheck(&cfg) {
            eprintln!("xcheck FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("xcheck OK");
        return;
    }
    run_load(&cfg);
}

fn parse_args() -> LoadConfig {
    let mut cfg = LoadConfig {
        addr: "127.0.0.1:7878"
            .parse()
            .expect("default address must parse"),
        smoke: false,
        xcheck: false,
        shutdown: false,
        submit_tws: None,
        poll_job: None,
        requests: 16,
        concurrency: 4,
        network: "DVS-Gesture".into(),
        policy: "PTB+StSAP".into(),
        tw: 8,
        quick: true,
        binary: false,
        keepalive: false,
        seed_unique: false,
        retries: 5,
        chaos: false,
        label: String::new(),
        cluster: None,
        cluster_kill: false,
        cluster_saturate: false,
        standby: false,
        coordinator_kill: false,
        coordinator_fence: false,
        soak: None,
    };
    if let Ok(addr) = std::env::var("PTB_ADDR") {
        cfg.addr = resolve_or_die(&addr);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = resolve_or_die(&value("--addr")),
            "--smoke" => cfg.smoke = true,
            "--xcheck" => cfg.xcheck = true,
            "--shutdown" => cfg.shutdown = true,
            "--codec" => match value("--codec").as_str() {
                "json" => cfg.binary = false,
                "bin" => cfg.binary = true,
                other => {
                    eprintln!("error: --codec wants json|bin, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--keepalive" => cfg.keepalive = true,
            "--submit-tws" => {
                let spec = value("--submit-tws");
                let tws: Option<Vec<u32>> = spec
                    .split(',')
                    .map(|s| s.trim().parse::<u32>().ok())
                    .collect();
                match tws {
                    Some(tws) if !tws.is_empty() => cfg.submit_tws = Some(tws),
                    _ => {
                        eprintln!("error: --submit-tws wants N,N,..., got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--poll-job" => {
                cfg.poll_job = Some(parse_or_die(&value("--poll-job"), "--poll-job") as u64);
            }
            "--requests" => cfg.requests = parse_or_die(&value("--requests"), "--requests").max(1),
            "--concurrency" => {
                cfg.concurrency = parse_or_die(&value("--concurrency"), "--concurrency").max(1);
            }
            "--network" => cfg.network = value("--network"),
            "--policy" => cfg.policy = value("--policy"),
            "--tw" => cfg.tw = parse_or_die(&value("--tw"), "--tw") as u32,
            "--full" => cfg.quick = false,
            "--seed-mode" => match value("--seed-mode").as_str() {
                "unique" => cfg.seed_unique = true,
                "fixed" => cfg.seed_unique = false,
                other => {
                    eprintln!("error: --seed-mode wants unique|fixed, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--retries" => cfg.retries = parse_or_die(&value("--retries"), "--retries") as u32,
            "--chaos" => cfg.chaos = true,
            "--label" => cfg.label = value("--label"),
            "--cluster" => {
                cfg.cluster = Some(parse_or_die(&value("--cluster"), "--cluster").clamp(1, 16));
            }
            "--cluster-kill" => cfg.cluster_kill = true,
            "--cluster-saturate" => cfg.cluster_saturate = true,
            "--standby" => cfg.standby = true,
            "--coordinator-kill" => cfg.coordinator_kill = true,
            "--coordinator-fence" => cfg.coordinator_fence = true,
            "--soak" => {
                cfg.soak = Some(parse_or_die(&value("--soak"), "--soak").clamp(1, 600) as u64);
            }
            "--help" | "-h" => {
                println!(
                    "usage: ptb-load [--addr HOST:PORT] (--smoke | --xcheck | --shutdown | \
                     --submit-tws N,N,... | --poll-job ID | \
                     --cluster N [--cluster-kill | --cluster-saturate | \
                     --standby (--coordinator-kill | --coordinator-fence)] | \
                     --soak SECS | \
                     [--requests N] [--concurrency C] [--network NAME] [--policy LABEL] \
                     [--tw N] [--codec json|bin] [--keepalive] \
                     [--seed-mode unique|fixed] [--full] [--retries N] \
                     [--chaos] [--label TEXT])"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn resolve_or_die(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("error: cannot resolve address {addr:?}");
            std::process::exit(2);
        })
}

fn parse_or_die(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants an integer, got {s:?}");
        std::process::exit(2);
    })
}

fn retry_policy(cfg: &LoadConfig, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: cfg.retries,
        seed,
        ..RetryPolicy::default()
    }
}

fn simulate_body(cfg: &LoadConfig, seed: u64) -> String {
    format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tw\": {}, \"quick\": {}, \"seed\": {seed}}}",
        cfg.network, cfg.policy, cfg.tw, cfg.quick
    )
}

/// The same `/simulate` request as [`simulate_body`], as a binary
/// `PTBW1` frame.
fn simulate_frame(cfg: &LoadConfig, seed: u64) -> Vec<u8> {
    let request = Value::Object(vec![
        ("network".into(), Value::Str(cfg.network.clone())),
        ("policy".into(), Value::Str(cfg.policy.clone())),
        ("tw".into(), Value::U64(u64::from(cfg.tw))),
        ("quick".into(), Value::Bool(cfg.quick)),
        ("seed".into(), Value::U64(seed)),
    ]);
    wire::frame(wire::KIND_SIMULATE, &request)
}

/// The request body and `Content-Type` for this run's codec.
fn simulate_payload(cfg: &LoadConfig, seed: u64) -> (Vec<u8>, Option<&'static str>) {
    if cfg.binary {
        (simulate_frame(cfg, seed), Some(wire::CONTENT_TYPE))
    } else {
        (simulate_body(cfg, seed).into_bytes(), None)
    }
}

/// One request over a worker's kept-alive connection, (re)connecting
/// when none is open or the server closed the previous one.
fn keepalive_request(
    conn: &mut Option<Connection>,
    addr: SocketAddr,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> std::io::Result<client::ClientResponse> {
    if conn.is_none() {
        *conn = Some(Connection::open(addr)?);
    }
    let result =
        conn.as_mut()
            .expect("connection just opened")
            .request("POST", path, content_type, body);
    match &result {
        Ok(_) if conn.as_ref().is_some_and(|c| !c.server_closed()) => {}
        // Error or server-announced close: next request reconnects.
        _ => *conn = None,
    }
    result
}

/// Drives the core routes once each, verifying every response.
fn run_smoke(cfg: &LoadConfig) -> Result<(), String> {
    let (status, body) = client::request_json(cfg.addr, "GET", "/healthz", "")
        .map_err(|e| format!("/healthz: {e}"))?;
    if status != 200 || !body.contains("ok") {
        return Err(format!("/healthz answered {status}: {body}"));
    }

    let (status, body) =
        client::request_json(cfg.addr, "POST", "/simulate", &simulate_body(cfg, 42))
            .map_err(|e| format!("/simulate: {e}"))?;
    if status != 200 || !body.contains("\"layers\"") {
        return Err(format!("/simulate answered {status}: {body}"));
    }

    let sweep = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, {}], \"quick\": true}}",
        cfg.network, cfg.policy, cfg.tw
    );
    let (status, body) = client::request_json(cfg.addr, "POST", "/sweep", &sweep)
        .map_err(|e| format!("/sweep: {e}"))?;
    if status != 200 || !body.contains("\"edp\"") {
        return Err(format!("/sweep answered {status}: {body}"));
    }

    let (status, body) = client::request_json(cfg.addr, "GET", "/metrics", "")
        .map_err(|e| format!("/metrics: {e}"))?;
    if status != 200 || !body.contains("\"endpoints\"") {
        return Err(format!("/metrics answered {status}: {body}"));
    }
    // The counters must reflect the traffic this smoke run just sent.
    if !body.contains("\"requests\": ") || body.contains("\"accepted\": 0,") {
        return Err(format!("/metrics counters look dead: {body}"));
    }
    // The audit counters must be exposed, and a healthy daemon shows
    // zero mismatches — any other value means a simulation diverged
    // from the reference model and smoke must fail loudly.
    if !body.contains("\"audit_mismatches\": 0,") {
        return Err(format!(
            "/metrics audit_mismatches missing or nonzero: {body}"
        ));
    }
    if !body.contains("\"acc_saturated\": ") {
        return Err(format!("/metrics is missing acc_saturated: {body}"));
    }
    Ok(())
}

/// The codec cross-equivalence probe: drives `/simulate` and a sync
/// `/sweep` through both codecs over one kept-alive connection
/// (including a pipelined pair) and demands that every binary response
/// decodes to a byte-identical JSON rendering of the JSON response.
fn run_xcheck(cfg: &LoadConfig) -> Result<(), String> {
    let mut conn = Connection::open(cfg.addr).map_err(|e| format!("connect: {e}"))?;
    // Tracks whether the whole probe really ran on reused connections;
    // the server may close under load, which reconnecting handles but
    // makes the reuse-counter assertion vacuous.
    let mut stayed_alive = true;
    let mut send = |conn: &mut Connection,
                    path: &str,
                    ctype: Option<&str>,
                    body: &[u8]|
     -> Result<client::ClientResponse, String> {
        let resp = match conn.request("POST", path, ctype, body) {
            Ok(resp) => resp,
            Err(e) => return Err(format!("{path}: {e}")),
        };
        if conn.server_closed() {
            stayed_alive = false;
            *conn = Connection::open(cfg.addr).map_err(|e| format!("reconnect: {e}"))?;
        }
        Ok(resp)
    };

    // /simulate through both codecs; same request, both on this
    // connection.
    let json = send(
        &mut conn,
        "/simulate",
        None,
        simulate_body(cfg, 42).as_bytes(),
    )?;
    if json.status != 200 {
        return Err(format!(
            "/simulate (json) answered {}: {}",
            json.status,
            String::from_utf8_lossy(&json.body)
        ));
    }
    let bin = send(
        &mut conn,
        "/simulate",
        Some(wire::CONTENT_TYPE),
        &simulate_frame(cfg, 42),
    )?;
    if bin.status != 200 {
        return Err(format!(
            "/simulate (bin) answered {}: {}",
            bin.status,
            String::from_utf8_lossy(&bin.body)
        ));
    }
    check_bit_identical("/simulate", wire::KIND_REPORT, &bin.body, &json.body)?;

    // A synchronous /sweep through both codecs.
    let sweep_json = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, {}], \"quick\": true, \"seed\": 42}}",
        cfg.network, cfg.policy, cfg.tw
    );
    let sweep_value = Value::Object(vec![
        ("network".into(), Value::Str(cfg.network.clone())),
        ("policy".into(), Value::Str(cfg.policy.clone())),
        (
            "tws".into(),
            Value::Array(vec![Value::U64(1), Value::U64(u64::from(cfg.tw))]),
        ),
        ("quick".into(), Value::Bool(true)),
        ("seed".into(), Value::U64(42)),
    ]);
    let json = send(&mut conn, "/sweep", None, sweep_json.as_bytes())?;
    if json.status != 200 {
        return Err(format!(
            "/sweep (json) answered {}: {}",
            json.status,
            String::from_utf8_lossy(&json.body)
        ));
    }
    let bin = send(
        &mut conn,
        "/sweep",
        Some(wire::CONTENT_TYPE),
        &wire::frame(wire::KIND_SWEEP, &sweep_value),
    )?;
    if bin.status != 200 {
        return Err(format!(
            "/sweep (bin) answered {}: {}",
            bin.status,
            String::from_utf8_lossy(&bin.body)
        ));
    }
    check_bit_identical("/sweep", wire::KIND_ROWS, &bin.body, &json.body)?;

    // A pipelined pair: both requests go out in ONE write (one segment
    // on loopback), so the server deterministically finds the second
    // already buffered when it finishes the first.
    conn.queue_request("GET", "/healthz", None, b"");
    conn.queue_request("GET", "/healthz", None, b"");
    conn.flush_queued()
        .map_err(|e| format!("pipelined write: {e}"))?;
    for i in 0..2 {
        let resp = conn
            .read_response()
            .map_err(|e| format!("pipelined response {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("pipelined /healthz {i} answered {}", resp.status));
        }
    }

    // The reuse and per-codec counters must have moved (unless the
    // server closed on us mid-probe, which makes them unprovable here).
    let (status, metrics) = client::request_json(cfg.addr, "GET", "/metrics", "")
        .map_err(|e| format!("/metrics: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics answered {status}"));
    }
    if metrics.contains("\"codec_bin\": 0,") {
        return Err(format!("codec_bin never counted: {metrics}"));
    }
    if stayed_alive {
        if metrics.contains("\"keepalive_reused\": 0,") {
            return Err(format!("connection reuse never counted: {metrics}"));
        }
        if metrics.contains("\"pipelined\": 0,") {
            return Err(format!("pipelined request never counted: {metrics}"));
        }
    }
    Ok(())
}

/// Asserts a binary response frame decodes to the same bytes the JSON
/// codec produced for the same request.
fn check_bit_identical(
    path: &str,
    expect_kind: u8,
    bin_body: &[u8],
    json_body: &[u8],
) -> Result<(), String> {
    let (kind, value) =
        wire::unframe(bin_body).map_err(|e| format!("{path}: bad response frame: {e}"))?;
    if kind != expect_kind {
        return Err(format!(
            "{path}: response kind {kind:#04x}, wanted {expect_kind:#04x}"
        ));
    }
    let rendered =
        serde_json::to_string(&value).map_err(|e| format!("{path}: render failed: {e}"))?;
    if rendered.as_bytes() != json_body {
        return Err(format!(
            "{path}: codecs diverged\n  json: {}\n  bin→json: {rendered}",
            String::from_utf8_lossy(json_body)
        ));
    }
    Ok(())
}

/// Submits a background sweep over the given TWs; prints the ack JSON
/// (`{"job": id, "total": n}`) so scripts can capture the job id.
fn run_submit(cfg: &LoadConfig, tws: &[u32]) {
    let body = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": {tws:?}, \
         \"quick\": {}, \"background\": true}}",
        cfg.network, cfg.policy, cfg.quick
    );
    match client::request_with_retry(
        cfg.addr,
        "POST",
        "/sweep",
        body.as_bytes(),
        &retry_policy(cfg, 0x5B317),
    ) {
        Ok(resp) if resp.status == 202 => {
            println!("{}", String::from_utf8_lossy(&resp.body));
        }
        Ok(resp) => {
            eprintln!(
                "submit answered {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Polls `GET /jobs/{id}` until the job is terminal; prints the final
/// poll body. Exit 0 = done, 1 = failed (or unreachable).
fn run_poll(cfg: &LoadConfig, id: u64) {
    let path = format!("/jobs/{id}");
    let policy = retry_policy(cfg, 0x9011 ^ id);
    loop {
        match client::request_with_retry(cfg.addr, "GET", &path, b"", &policy) {
            Ok(resp) if resp.status == 200 => {
                let body = String::from_utf8_lossy(&resp.body).to_string();
                if body.contains("\"done\": true") {
                    println!("{body}");
                    return;
                }
                if body.contains("\"failed\": true") {
                    println!("{body}");
                    std::process::exit(1);
                }
            }
            Ok(resp) => {
                eprintln!(
                    "poll answered {}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("poll failed: {e}");
                std::process::exit(1);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One chaos disruption: open a connection and misbehave — drop it
/// cold, send a short (truncated) write, or send garbage — exercising
/// the daemon's robustness right before a real request.
fn chaos_disrupt(addr: SocketAddr, draw: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return; // daemon busy: that's the load test's problem, not ours
    };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    match draw % 4 {
        // Connect-and-drop: accepted, then EOF before any bytes.
        0 => {}
        // Short write: a valid head that promises more body than sent.
        1 => {
            let _ =
                stream.write_all(b"POST /simulate HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"ne");
        }
        // A well-framed HTTP request carrying a corrupt binary frame
        // (bad checksum): must come back as a clean 400 error.
        2 => {
            let mut frame = wire::frame(wire::KIND_SIMULATE, &Value::Null);
            let last = frame.len() - 1;
            frame[last] ^= 0xFF;
            let head = format!(
                "POST /simulate HTTP/1.1\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                wire::CONTENT_TYPE,
                frame.len()
            );
            let _ = stream.write_all(head.as_bytes());
            let _ = stream.write_all(&frame);
        }
        // Garbage bytes.
        _ => {
            let _ = stream.write_all(b"\xff\xfe\x00 not http at all \x01\x02");
        }
    }
    drop(stream); // immediate close, whatever was (not) sent
}

/// Closed-loop load: `concurrency` workers issue requests until
/// `requests` total complete; prints a JSON summary. Under `--chaos`
/// every request is preceded by a disruption and the run demands
/// `ok == requests` (convergence through retries) to exit zero.
fn run_load(cfg: &LoadConfig) {
    let issued = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let latencies_us: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(cfg.requests));
    let started = Instant::now();

    std::thread::scope(|s| {
        for worker in 0..cfg.concurrency {
            let issued = &issued;
            let errors = &errors;
            let retried = &retried;
            let latencies_us = &latencies_us;
            s.spawn(move || {
                let policy = retry_policy(cfg, 0xC0FFEE ^ worker as u64);
                // Under --keepalive each worker holds one connection
                // across requests, reconnecting when the server closes.
                let mut conn: Option<Connection> = None;
                loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.requests {
                        return;
                    }
                    if cfg.chaos {
                        chaos_disrupt(cfg.addr, (worker * 31 + i) as u64);
                    }
                    let seed = if cfg.seed_unique { 1000 + i as u64 } else { 42 };
                    let (body, ctype) = simulate_payload(cfg, seed);
                    let t0 = Instant::now();
                    let first = if cfg.keepalive {
                        keepalive_request(&mut conn, cfg.addr, "/simulate", ctype, &body)
                    } else {
                        client::request_typed(cfg.addr, "POST", "/simulate", ctype, &body)
                    };
                    let ok = match &first {
                        Ok(resp) if resp.status == 200 => true,
                        _ if cfg.retries > 0 => {
                            retried.fetch_add(1, Ordering::Relaxed);
                            matches!(
                                client::request_with_retry_typed(
                                    cfg.addr,
                                    "POST",
                                    "/simulate",
                                    ctype,
                                    &body,
                                    &policy,
                                ),
                                Ok(resp) if resp.status == 200
                            )
                        }
                        _ => false,
                    };
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    if ok {
                        latencies_us
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(us);
                    } else {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let wall = started.elapsed().as_secs_f64();
    let mut lat = latencies_us
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    };
    let ok = lat.len();
    println!(
        "{{\"label\": \"{}\", \"requests\": {}, \"ok\": {ok}, \"errors\": {}, \
         \"retried\": {}, \"chaos\": {}, \
         \"codec\": \"{}\", \"keepalive\": {}, \
         \"concurrency\": {}, \"seed_mode\": \"{}\", \"wall_s\": {wall:.3}, \
         \"throughput_rps\": {:.3}, \"p50_us\": {}, \"p99_us\": {}}}",
        cfg.label,
        cfg.requests,
        errors.load(Ordering::Relaxed),
        retried.load(Ordering::Relaxed),
        cfg.chaos,
        if cfg.binary { "bin" } else { "json" },
        cfg.keepalive,
        cfg.concurrency,
        if cfg.seed_unique { "unique" } else { "fixed" },
        ok as f64 / wall.max(1e-9),
        pct(0.50),
        pct(0.99),
    );
    // Chaos demands convergence: every request must have gotten through.
    if ok == 0 || (cfg.chaos && ok != cfg.requests) {
        std::process::exit(1);
    }
    // And it demands integrity: whatever the disruptions did to the
    // daemon, no audited run may have diverged from the reference.
    if cfg.chaos {
        match client::request_json(cfg.addr, "GET", "/metrics", "") {
            Ok((200, body)) if body.contains("\"audit_mismatches\": 0,") => {}
            Ok((status, body)) => {
                eprintln!("chaos integrity check failed ({status}): {body}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("chaos integrity check could not read /metrics: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The spawned fleet: worker and coordinator child processes, killed
/// wholesale on drop so no failure path leaks daemons.
struct FleetProcs {
    children: Vec<Child>,
}

impl Drop for FleetProcs {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one `ptb-clusterd` process (worker or coordinator role per
/// `args`) with a `--port-file` handshake; returns the child and the
/// ephemeral address it bound.
fn spawn_daemon(
    binary: &PathBuf,
    args: &[&str],
    envs: &[(&str, String)],
    tag: usize,
) -> Result<(Child, SocketAddr), String> {
    let port_file = std::env::temp_dir().join(format!(
        "ptb-load-cluster-{}-{tag}.port",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&port_file);
    let mut command = Command::new(binary);
    command
        .args(args)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let child = command
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", binary.display()))?;
    let deadline = Instant::now() + Duration::from_secs(30);
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break port;
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("daemon {tag} never wrote its port file"));
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&port_file);
    Ok((child, resolve_or_die(&format!("127.0.0.1:{port}"))))
}

/// `--cluster N`: spawn a real fleet (N workers + coordinator, sibling
/// `ptb-clusterd` binary, ephemeral ports), sweep through it, and
/// demand byte identity with a single direct worker. With
/// `--cluster-kill`, SIGKILL one worker mid-sweep first.
fn run_cluster(cfg: &LoadConfig, n: usize) -> Result<(), String> {
    if cfg.standby {
        if cfg.cluster_kill || cfg.cluster_saturate {
            return Err(
                "--standby pairs with --coordinator-kill / --coordinator-fence, \
                 not the worker drills"
                    .into(),
            );
        }
        if cfg.coordinator_kill == cfg.coordinator_fence {
            return Err(
                "--standby wants exactly one of --coordinator-kill / --coordinator-fence".into(),
            );
        }
        return run_cluster_failover(cfg, n);
    }
    if cfg.coordinator_kill || cfg.coordinator_fence {
        return Err("--coordinator-kill / --coordinator-fence need --standby".into());
    }
    if cfg.cluster_kill && cfg.cluster_saturate {
        return Err("pick one of --cluster-kill / --cluster-saturate".into());
    }
    // A kill needs a survivor to reclaim onto; so does a saturated
    // worker's backpressured shard.
    let n = if cfg.cluster_kill || cfg.cluster_saturate {
        n.max(2)
    } else {
        n
    };
    let binary = clusterd_binary()?;

    // Workers first. Under --cluster-kill every shard dawdles at the
    // `shard_exec` failpoint so the kill reliably lands mid-shard.
    let mut fleet = FleetProcs { children: vec![] };
    let worker_envs: Vec<(&str, String)> = if cfg.cluster_kill {
        vec![("PTB_FAILPOINTS", "shard_exec=sleep:200".into())]
    } else {
        vec![]
    };
    let mut worker_addrs = Vec::with_capacity(n);
    for tag in 0..n {
        let mut envs = worker_envs.clone();
        if cfg.cluster_saturate && tag == 0 {
            // Strangle worker 0's admission watermark: after its first
            // cached tensor it sheds every heavy request with 503 while
            // /healthz stays green — saturated, but emphatically alive.
            envs.push(("PTB_MEM_WATERMARK_BYTES", "1".into()));
        }
        let (child, addr) = spawn_daemon(
            &binary,
            &[
                "--spawn-worker",
                "--addr",
                "127.0.0.1:0",
                "--job-dir",
                "off",
                "--workers",
                "2",
            ],
            &envs,
            tag,
        )?;
        fleet.children.push(child);
        worker_addrs.push(addr);
    }
    let worker_list = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let (coordinator, addr) = spawn_daemon(
        &binary,
        &[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &worker_list,
            "--job-dir",
            "off",
            "--probe-ms",
            "100",
            "--probe-timeout-ms",
            "500",
            "--fail-threshold",
            "1",
        ],
        &[],
        n,
    )?;
    fleet.children.push(coordinator);

    let tws: Vec<u32> = if cfg.cluster_kill {
        (1..=24).collect()
    } else if cfg.cluster_saturate {
        // Enough shards that worker 0 owns some with near certainty,
        // so backpressure re-dispatch demonstrably happens.
        (1..=16).collect()
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    if cfg.cluster_saturate {
        // Prime worker 0's cache so its 1-byte watermark is already
        // exceeded when the sweep's shards arrive.
        let (status, body) = client::request_json(
            worker_addrs[0],
            "POST",
            "/simulate",
            &simulate_body(cfg, 4242),
        )
        .map_err(|e| format!("priming /simulate: {e}"))?;
        if status != 200 {
            return Err(format!("priming /simulate answered {status}: {body}"));
        }
    }
    let sweep = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": {tws:?}, \
         \"quick\": true, \"seed\": 42}}",
        cfg.network, cfg.policy
    );
    let started = Instant::now();

    let (rows_text, victim) = if cfg.cluster_kill {
        run_cluster_kill(addr, &mut fleet, &sweep)?
    } else {
        let (status, body) = client::request_json(addr, "POST", "/sweep", &sweep)
            .map_err(|e| format!("cluster /sweep: {e}"))?;
        if status != 200 {
            return Err(format!("cluster /sweep answered {status}: {body}"));
        }
        (body, None)
    };
    let wall = started.elapsed().as_secs_f64();

    // The reference: the same sweep on ONE worker daemon, no cluster.
    // After a kill that worker must be a survivor; under saturation it
    // must be an unthrottled worker (worker 0 sheds direct sweeps too).
    let reference = if cfg.cluster_saturate || victim == Some(0) {
        1 % n
    } else {
        0
    };
    let survivor = worker_addrs[reference];
    let (status, direct) = client::request_json(survivor, "POST", "/sweep", &sweep)
        .map_err(|e| format!("direct /sweep: {e}"))?;
    if status != 200 {
        return Err(format!("direct /sweep answered {status}: {direct}"));
    }
    if victim.is_none() && rows_text != direct {
        return Err(format!(
            "cluster response is not byte-identical to a single node\n  cluster: \
             {rows_text}\n  direct:  {direct}"
        ));
    }
    let cluster_rows: Vec<SweepRow> = serde_json::from_str(&rows_text)
        .map_err(|e| format!("cluster rows do not parse: {e}: {rows_text}"))?;
    let direct_rows: Vec<SweepRow> =
        serde_json::from_str(&direct).map_err(|e| format!("direct rows do not parse: {e}"))?;
    if cluster_rows != direct_rows {
        return Err(format!(
            "cluster rows diverge from a single node\n  cluster: {rows_text}\n  direct:  {direct}"
        ));
    }

    if cfg.cluster_saturate {
        // The whole point: a worker that shed every shard with 503 must
        // never have been declared dead, and the shards it bounced must
        // show up as backpressure re-dispatches, not failures.
        let (status, metrics) = client::request_json(addr, "GET", "/metrics", "")
            .map_err(|e| format!("coordinator /metrics: {e}"))?;
        if status != 200 {
            return Err(format!("coordinator /metrics answered {status}"));
        }
        let parsed: Value =
            serde_json::from_str(&metrics).map_err(|e| format!("bad /metrics: {e}"))?;
        let deaths = parsed
            .get("worker_deaths")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX);
        if deaths != 0 {
            return Err(format!(
                "saturated worker was falsely declared dead ({deaths} deaths): {metrics}"
            ));
        }
        let redispatch = parsed
            .get("backpressure_redispatch")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if redispatch == 0 {
            return Err(format!(
                "saturation never produced a backpressure re-dispatch: {metrics}"
            ));
        }
    }

    let _ = client::request_json(addr, "POST", "/shutdown", "");
    println!(
        "{{\"label\": \"{}\", \"mode\": \"cluster\", \"workers\": {n}, \
         \"kill\": {}, \"saturate\": {}, \"shards\": {}, \"wall_s\": {wall:.3}, \
         \"shards_per_s\": {:.3}, \"bit_identical\": true}}",
        cfg.label,
        cfg.cluster_kill,
        cfg.cluster_saturate,
        tws.len(),
        tws.len() as f64 / wall.max(1e-9),
    );
    Ok(())
}

/// The sibling `ptb-clusterd` binary (same target directory), which
/// both the fleet modes and `--soak` spawn daemons through.
fn clusterd_binary() -> Result<PathBuf, String> {
    std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .map(|dir| dir.join("ptb-clusterd"))
        .filter(|p| p.exists())
        .ok_or_else(|| {
            "ptb-clusterd not found next to ptb-load (build the ptb-cluster crate)".into()
        })
}

/// The `--cluster-kill` sweep: submit in the background, SIGKILL the
/// first worker that completes a shard, poll the job to done, and
/// return its rows (as the JSON array text) plus the victim's index.
fn run_cluster_kill(
    addr: SocketAddr,
    fleet: &mut FleetProcs,
    sweep: &str,
) -> Result<(String, Option<usize>), String> {
    let background = format!(
        "{}, \"background\": true}}",
        sweep.strip_suffix('}').expect("sweep body ends with }")
    );
    let (status, body) = client::request_json(addr, "POST", "/sweep", &background)
        .map_err(|e| format!("background /sweep: {e}"))?;
    if status != 202 {
        return Err(format!("background /sweep answered {status}: {body}"));
    }
    let ack: Value = serde_json::from_str(&body).map_err(|e| format!("bad ack: {e}: {body}"))?;
    let id = ack
        .get("job")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("ack has no job id: {body}"))?;

    // Kill whichever worker lands a shard first: it is already deep
    // into its next 200 ms shard, which the survivor must reclaim.
    let deadline = Instant::now() + Duration::from_secs(120);
    let victim = loop {
        let (status, metrics) = client::request_json(addr, "GET", "/metrics", "")
            .map_err(|e| format!("/metrics: {e}"))?;
        if status != 200 {
            return Err(format!("/metrics answered {status}"));
        }
        let parsed: Value =
            serde_json::from_str(&metrics).map_err(|e| format!("bad /metrics: {e}"))?;
        let dispatched: Vec<u64> = parsed
            .get("workers")
            .and_then(Value::as_array)
            .map(|workers| {
                workers
                    .iter()
                    .map(|w| w.get("dispatched").and_then(Value::as_u64).unwrap_or(0))
                    .collect()
            })
            .unwrap_or_default();
        if let Some(v) = dispatched.iter().position(|&d| d >= 1) {
            break v;
        }
        if Instant::now() >= deadline {
            return Err("no shard ever completed before the kill window".into());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let child = &mut fleet.children[victim];
    child
        .kill()
        .map_err(|e| format!("kill worker {victim}: {e}"))?;
    let _ = child.wait();

    // The sweep must converge anyway.
    let path = format!("/jobs/{id}");
    loop {
        let (status, body) = client::request_json(addr, "GET", &path, "")
            .map_err(|e| format!("poll {path}: {e}"))?;
        if status != 200 {
            return Err(format!("poll answered {status}: {body}"));
        }
        let poll: Value = serde_json::from_str(&body).map_err(|e| format!("bad poll: {e}"))?;
        if poll.get("failed").and_then(Value::as_bool) == Some(true) {
            return Err(format!("sweep failed after the kill: {body}"));
        }
        if poll.get("done").and_then(Value::as_bool) == Some(true) {
            let rows = poll.get("rows").ok_or_else(|| format!("no rows: {body}"))?;
            let text = serde_json::to_string(rows).map_err(|e| format!("render rows: {e}"))?;
            return Ok((text, Some(victim)));
        }
        if Instant::now() >= deadline {
            return Err("sweep never finished after the kill".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One failover-aware request: tries each candidate coordinator in
/// turn, follows a single `307` `Location` hop (the HA redirect of
/// `docs/PROTOCOL.md` §7), and treats refused connections, `503`s, and
/// unfollowable redirects as "try the next candidate". `None` means
/// nobody gave a definitive answer this round; callers retry on a
/// deadline.
fn failover_request(
    candidates: &[SocketAddr],
    method: &str,
    path: &str,
    body: &[u8],
) -> Option<(u16, String)> {
    for &addr in candidates {
        let Ok(mut resp) = client::request_typed(addr, method, path, None, body) else {
            continue;
        };
        if resp.status == 307 {
            let Some(target) = resp
                .location
                .as_deref()
                .and_then(|loc| loc.to_socket_addrs().ok())
                .and_then(|mut it| it.next())
            else {
                continue;
            };
            resp = match client::request_typed(target, method, path, None, body) {
                Ok(followed) => followed,
                Err(_) => continue,
            };
        }
        match resp.status {
            307 | 503 => continue,
            status => return Some((status, String::from_utf8_lossy(&resp.body).to_string())),
        }
    }
    None
}

/// `--cluster N --standby`: the coordinator-HA drills. Spawns `N`
/// workers, an active coordinator journaling into a real temp job dir
/// on a short lease, and `PTB_STANDBYS` hot standbys tailing it, then
/// submits a journaled background sweep and injects the configured
/// coordinator failure:
///
/// - `--coordinator-kill` SIGKILLs the active with shards in flight.
///   A standby must promote, replay the mirrored journal, and finish
///   the job with rows identical to a lone worker's — and fresh sync
///   sweeps through the promoted coordinator must be byte-identical
///   to a single node across both codecs.
/// - `--coordinator-fence` leaves the active running but arms
///   `coordinator_pause=err@2` on it, so its tail route goes dark
///   after the standby's initial sync. The standby promotes while the
///   zombie still dispatches; the drill demands the workers rejected
///   the zombie's stale epoch (`fenced_dispatches >= 1` on the zombie,
///   `epoch_seen >= 2` on a worker), that the zombie demoted itself,
///   and that the job finished via the new active anyway.
///
/// Both modes also demand the promoted coordinator reports an epoch
/// above the deposed active's and zero `audit_mismatches`.
fn run_cluster_failover(cfg: &LoadConfig, n: usize) -> Result<(), String> {
    let n = n.max(2);
    let binary = clusterd_binary()?;
    // The fence drill needs exactly one standby so the promotion (and
    // the epoch the zombie is judged against) is deterministic.
    let standbys = if cfg.coordinator_fence {
        1
    } else {
        std::env::var("PTB_STANDBYS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1)
            .clamp(1, 3)
    };
    let scratch = std::env::temp_dir().join(format!("ptb-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Workers: every shard dawdles at `shard_exec` so the coordinator
    // kill (or the zombie's fencing) reliably lands with work in
    // flight.
    let mut fleet = FleetProcs { children: vec![] };
    let worker_envs: Vec<(&str, String)> = vec![("PTB_FAILPOINTS", "shard_exec=sleep:200".into())];
    let mut worker_addrs = Vec::with_capacity(n);
    for tag in 0..n {
        let (child, addr) = spawn_daemon(
            &binary,
            &[
                "--spawn-worker",
                "--addr",
                "127.0.0.1:0",
                "--job-dir",
                "off",
                "--workers",
                "2",
            ],
            &worker_envs,
            tag,
        )?;
        fleet.children.push(child);
        worker_addrs.push(addr);
    }
    let worker_list = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");

    // The active coordinator, journaling for real (standbys mirror the
    // journals) on a short lease so the drill converges quickly.
    let active_dir = scratch.join("active").display().to_string();
    let mut active_envs: Vec<(&str, String)> = vec![];
    if cfg.coordinator_fence {
        // Two free index polls let the standby finish its initial
        // mirror sync; every later poll errors, so the standby hears
        // silence and promotes while the active still dispatches.
        active_envs.push(("PTB_FAILPOINTS", "coordinator_pause=err@2".into()));
    }
    let (active_child, active_addr) = spawn_daemon(
        &binary,
        &[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &worker_list,
            "--job-dir",
            &active_dir,
            "--probe-ms",
            "100",
            "--probe-timeout-ms",
            "500",
            "--fail-threshold",
            "1",
            "--lease-ms",
            "600",
        ],
        &active_envs,
        n,
    )?;
    let active_slot = fleet.children.len();
    fleet.children.push(active_child);

    // Submit the journaled sweep BEFORE any standby boots: the very
    // first tail sync then mirrors the submit record, so the drill
    // never races the mirror against the failpoint or the kill.
    let tws: Vec<u32> = if cfg.coordinator_fence {
        // Extra shards keep the zombie dispatching well past the
        // standby's promotion, so a stale-epoch dispatch must happen.
        (1..=32).collect()
    } else {
        (1..=24).collect()
    };
    let sweep = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": {tws:?}, \
         \"quick\": true, \"seed\": 42}}",
        cfg.network, cfg.policy
    );
    let background = format!(
        "{}, \"background\": true}}",
        sweep.strip_suffix('}').expect("sweep body ends with }")
    );
    let started = Instant::now();
    let (status, ack) = client::request_json(active_addr, "POST", "/sweep", &background)
        .map_err(|e| format!("background /sweep: {e}"))?;
    if status != 202 {
        return Err(format!("background /sweep answered {status}: {ack}"));
    }
    let ack: Value = serde_json::from_str(&ack).map_err(|e| format!("bad ack: {e}: {ack}"))?;
    let id = ack
        .get("job")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("ack has no job id: {ack:?}"))?;

    let peer = active_addr.to_string();
    let mut standby_addrs = Vec::with_capacity(standbys);
    for k in 0..standbys {
        let dir = scratch.join(format!("standby-{k}")).display().to_string();
        let (child, addr) = spawn_daemon(
            &binary,
            &[
                "--addr",
                "127.0.0.1:0",
                "--workers",
                &worker_list,
                "--job-dir",
                &dir,
                "--standby",
                "--peer",
                &peer,
                "--probe-ms",
                "100",
                "--probe-timeout-ms",
                "500",
                "--fail-threshold",
                "1",
                "--lease-ms",
                "600",
            ],
            &[],
            n + 1 + k,
        )?;
        fleet.children.push(child);
        standby_addrs.push(addr);
    }

    if cfg.coordinator_kill {
        // Wait until a shard has actually round-tripped (the journal
        // holds a submit plus dispatch records), then SIGKILL the
        // active with the rest of the sweep still in flight.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let parsed = fetch_metrics(active_addr)?;
            if metric_u64(&parsed, "shards_dispatched") >= 1 {
                break;
            }
            if Instant::now() >= deadline {
                return Err("no shard ever completed before the coordinator kill".into());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let child = &mut fleet.children[active_slot];
        child.kill().map_err(|e| format!("kill coordinator: {e}"))?;
        let _ = child.wait();
    }

    // Poll the job to done through whatever coordinator answers.
    // Before promotion a standby 307s to the (dead or fenced) active
    // and a promoted standby may briefly answer 404 between taking
    // leadership and finishing its journal replay — both retry.
    let mut candidates = vec![active_addr];
    candidates.extend(standby_addrs.iter().copied());
    let path = format!("/jobs/{id}");
    let deadline = Instant::now() + Duration::from_secs(120);
    let rows_text = loop {
        if let Some((status, body)) = failover_request(&candidates, "GET", &path, b"") {
            match status {
                200 => {
                    let poll: Value = serde_json::from_str(&body)
                        .map_err(|e| format!("bad poll: {e}: {body}"))?;
                    if poll.get("failed").and_then(Value::as_bool) == Some(true) {
                        return Err(format!("sweep failed across the failover: {body}"));
                    }
                    if poll.get("done").and_then(Value::as_bool) == Some(true) {
                        let rows = poll.get("rows").ok_or_else(|| format!("no rows: {body}"))?;
                        break serde_json::to_string(rows)
                            .map_err(|e| format!("render rows: {e}"))?;
                    }
                }
                404 => {}
                other => return Err(format!("poll answered {other}: {body}")),
            }
        }
        if Instant::now() >= deadline {
            return Err("sweep never finished across the failover".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    let wall = started.elapsed().as_secs_f64();

    // The promoted coordinator: whichever standby now claims the
    // active role (the fence drill's zombie also said "active" until
    // its demotion, so only standbys are consulted).
    let promoted = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let promoted = standby_addrs.iter().copied().find(|&addr| {
                matches!(
                    client::request_json(addr, "GET", "/healthz", ""),
                    Ok((200, body)) if body.contains("\"role\": \"active\"")
                )
            });
            if let Some(addr) = promoted {
                break addr;
            }
            if Instant::now() >= deadline {
                return Err("no standby ever promoted itself".into());
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    if cfg.coordinator_fence {
        // The zombie must have been fenced at the worker boundary and
        // demoted itself on the first 409.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let parsed = fetch_metrics(active_addr)?;
            let fenced = metric_u64(&parsed, "fenced_dispatches");
            let still_leader = parsed.get("leader").and_then(Value::as_bool) == Some(true);
            if fenced >= 1 && !still_leader {
                break;
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "the zombie coordinator was never fenced: {parsed:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let bumped = worker_addrs
            .iter()
            .any(|&w| fetch_metrics(w).is_ok_and(|m| metric_u64(&m, "epoch_seen") >= 2));
        if !bumped {
            return Err("no worker ever saw the promoted epoch".into());
        }
    }

    let parsed = fetch_metrics(promoted)?;
    let epoch = metric_u64(&parsed, "epoch");
    if epoch < 2 {
        return Err(format!(
            "promoted coordinator claims epoch {epoch}, wanted >= 2"
        ));
    }
    if parsed.get("leader").and_then(Value::as_bool) != Some(true) {
        return Err(format!(
            "promoted coordinator does not report leadership: {parsed:?}"
        ));
    }
    if metric_u64(&parsed, "audit_mismatches") != 0 {
        return Err(format!("audit mismatches across the failover: {parsed:?}"));
    }

    // The journaled job's rows must match a lone worker running the
    // same sweep — failover may cost recomputation, never correctness.
    let (status, direct) = client::request_json(worker_addrs[0], "POST", "/sweep", &sweep)
        .map_err(|e| format!("direct /sweep: {e}"))?;
    if status != 200 {
        return Err(format!("direct /sweep answered {status}: {direct}"));
    }
    let failover_rows: Vec<SweepRow> = serde_json::from_str(&rows_text)
        .map_err(|e| format!("failover rows do not parse: {e}: {rows_text}"))?;
    let direct_rows: Vec<SweepRow> =
        serde_json::from_str(&direct).map_err(|e| format!("direct rows do not parse: {e}"))?;
    if failover_rows != direct_rows {
        return Err(format!(
            "failover rows diverge from a single node\n  failover: {rows_text}\n  \
             direct:   {direct}"
        ));
    }

    // Fresh sync sweeps through the promoted coordinator: byte-
    // identical to a single node in JSON, and the binary codec must
    // decode to those exact bytes (the cross-codec contract survives
    // promotion).
    let small_json = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, 2, 4, 8], \
         \"quick\": true, \"seed\": 42}}",
        cfg.network, cfg.policy
    );
    let small_value = Value::Object(vec![
        ("network".into(), Value::Str(cfg.network.clone())),
        ("policy".into(), Value::Str(cfg.policy.clone())),
        (
            "tws".into(),
            Value::Array(vec![
                Value::U64(1),
                Value::U64(2),
                Value::U64(4),
                Value::U64(8),
            ]),
        ),
        ("quick".into(), Value::Bool(true)),
        ("seed".into(), Value::U64(42)),
    ]);
    let (status, via_cluster) = client::request_json(promoted, "POST", "/sweep", &small_json)
        .map_err(|e| format!("promoted /sweep: {e}"))?;
    if status != 200 {
        return Err(format!("promoted /sweep answered {status}: {via_cluster}"));
    }
    let (status, via_worker) =
        client::request_json(worker_addrs[1 % n], "POST", "/sweep", &small_json)
            .map_err(|e| format!("reference /sweep: {e}"))?;
    if status != 200 {
        return Err(format!("reference /sweep answered {status}: {via_worker}"));
    }
    if via_cluster != via_worker {
        return Err(format!(
            "promoted coordinator's sweep is not byte-identical to a single node\n  \
             cluster: {via_cluster}\n  direct:  {via_worker}"
        ));
    }
    let bin = client::request_typed(
        promoted,
        "POST",
        "/sweep",
        Some(wire::CONTENT_TYPE),
        &wire::frame(wire::KIND_SWEEP, &small_value),
    )
    .map_err(|e| format!("promoted /sweep (bin): {e}"))?;
    if bin.status != 200 {
        return Err(format!(
            "promoted /sweep (bin) answered {}: {}",
            bin.status,
            String::from_utf8_lossy(&bin.body)
        ));
    }
    check_bit_identical("/sweep", wire::KIND_ROWS, &bin.body, via_cluster.as_bytes())?;

    let _ = client::request_json(promoted, "POST", "/shutdown", "");
    if !cfg.coordinator_kill {
        let _ = client::request_json(active_addr, "POST", "/shutdown", "");
    }
    drop(fleet);
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "{{\"label\": \"{}\", \"mode\": \"{}\", \"workers\": {n}, \
         \"standbys\": {standbys}, \"epoch\": {epoch}, \"shards\": {}, \
         \"wall_s\": {wall:.3}, \"bit_identical\": true}}",
        cfg.label,
        if cfg.coordinator_kill {
            "coordinator-kill"
        } else {
            "coordinator-fence"
        },
        tws.len(),
    );
    Ok(())
}

/// A numeric counter out of a parsed `/metrics` body (0 when absent).
fn metric_u64(parsed: &Value, key: &str) -> u64 {
    parsed.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// One `/metrics` fetch, parsed.
fn fetch_metrics(addr: SocketAddr) -> Result<Value, String> {
    let (status, body) =
        client::request_json(addr, "GET", "/metrics", "").map_err(|e| format!("/metrics: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics answered {status}: {body}"));
    }
    serde_json::from_str(&body).map_err(|e| format!("bad /metrics: {e}: {body}"))
}

/// `--soak SECS`: the resource-governance soak. Spawns a worker daemon
/// strangled by tiny budgets (64 KiB memory cache, 256 KiB disk cache,
/// a 4-deep queue, 1-second job retention) and drives bursty
/// unique-seed traffic at it for `SECS` seconds, so the working set
/// dwarfs every budget. The run exits nonzero unless governance
/// demonstrably engaged without breaking anything:
///
/// - progress happened (`ok > 0`) and the ONLY tolerated per-request
///   failure is a 503 shed — any other status or transport error fails
///   the soak,
/// - `/metrics` shows `cache_evictions > 0`, `admission_shed > 0`, and
///   `audit_mismatches == 0`,
/// - the disk cache directory ends within its byte budget (plus one
///   in-flight temp file of slack),
/// - the up-front background job finishes, then *expires*: its journal
///   file is GC'd and its poll answers the documented `"gone"` 404,
/// - a final `/sweep` is byte-identical to an unbudgeted daemon's.
fn run_soak(cfg: &LoadConfig, secs: u64) -> Result<(), String> {
    const MEM_BUDGET: u64 = 64 * 1024;
    const DISK_BUDGET: u64 = 256 * 1024;
    const JOB_DIR_BUDGET: u64 = 64 * 1024;
    const SOAK_THREADS: usize = 8;
    let binary = clusterd_binary()?;
    let scratch = std::env::temp_dir().join(format!("ptb-soak-{}", std::process::id()));
    let cache_dir = scratch.join("cache");
    let job_dir = scratch.join("jobs");
    let _ = std::fs::remove_dir_all(&scratch);

    let mut fleet = FleetProcs { children: vec![] };
    let envs: Vec<(&str, String)> = vec![
        ("PTB_CACHE", "disk".into()),
        ("PTB_CACHE_DIR", cache_dir.display().to_string()),
        ("PTB_CACHE_MEM_BYTES", MEM_BUDGET.to_string()),
        ("PTB_CACHE_DISK_BYTES", DISK_BUDGET.to_string()),
        ("PTB_QUEUE_CAP", "4".into()),
        ("PTB_JOB_RETAIN", "1".into()),
        ("PTB_JOB_DIR_BYTES", JOB_DIR_BUDGET.to_string()),
    ];
    let job_dir_arg = job_dir.display().to_string();
    let (child, addr) = spawn_daemon(
        &binary,
        &[
            "--spawn-worker",
            "--addr",
            "127.0.0.1:0",
            "--job-dir",
            &job_dir_arg,
            "--workers",
            "2",
        ],
        &envs,
        0,
    )?;
    fleet.children.push(child);

    // A background job up front: it must finish now and EXPIRE later.
    let background = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, 2], \
         \"quick\": true, \"seed\": 7, \"background\": true}}",
        cfg.network, cfg.policy
    );
    let (status, ack) = client::request_json(addr, "POST", "/sweep", &background)
        .map_err(|e| format!("background /sweep: {e}"))?;
    if status != 202 {
        return Err(format!("background /sweep answered {status}: {ack}"));
    }
    let ack: Value = serde_json::from_str(&ack).map_err(|e| format!("bad ack: {e}: {ack}"))?;
    let job_id = ack
        .get("job")
        .and_then(Value::as_u64)
        .ok_or_else(|| "ack has no job id".to_string())?;
    let poll_path = format!("/jobs/{job_id}");
    let poll_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::request_json(addr, "GET", &poll_path, "")
            .map_err(|e| format!("poll {poll_path}: {e}"))?;
        if status != 200 {
            return Err(format!("poll answered {status}: {body}"));
        }
        if body.contains("\"failed\": true") {
            return Err(format!("background job failed: {body}"));
        }
        if body.contains("\"done\": true") {
            break;
        }
        if Instant::now() >= poll_deadline {
            return Err("background job never finished".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // The soak itself: SOAK_THREADS closed loops of unique-seed
    // /simulate (every 16th a sync /sweep), far outrunning a 4-deep
    // queue with 2 workers, so admission control must engage.
    let ok = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let hard_error: Mutex<Option<String>> = Mutex::new(None);
    let deadline = Instant::now() + Duration::from_secs(secs);
    std::thread::scope(|s| {
        for worker in 0..SOAK_THREADS {
            let ok = &ok;
            let sheds = &sheds;
            let hard_error = &hard_error;
            s.spawn(move || {
                let mut i: u64 = 0;
                while Instant::now() < deadline {
                    i += 1;
                    let seed = 1_000_000 * (worker as u64 + 1) + i;
                    let (path, body) = if i.is_multiple_of(16) {
                        (
                            "/sweep",
                            format!(
                                "{{\"network\": \"{}\", \"policy\": \"{}\", \
                                 \"tws\": [1, {}], \"quick\": true, \"seed\": {seed}}}",
                                cfg.network, cfg.policy, cfg.tw
                            ),
                        )
                    } else {
                        ("/simulate", simulate_body(cfg, seed))
                    };
                    match client::request_json(addr, "POST", path, &body) {
                        Ok((200, _)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((503, _)) => {
                            // The one tolerated failure: governance
                            // shedding load. Back off briefly.
                            sheds.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Ok((status, body)) => {
                            let mut slot = hard_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            slot.get_or_insert(format!("{path} answered {status}: {body}"));
                            return;
                        }
                        Err(e) => {
                            let mut slot = hard_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            slot.get_or_insert(format!("{path} transport error: {e}"));
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(err) = hard_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(format!("non-503 failure under soak: {err}"));
    }
    let ok = ok.load(Ordering::Relaxed);
    if ok == 0 {
        return Err("soak made no progress: every request was shed".into());
    }

    // Governance must have ENGAGED, not just not-crashed.
    let parsed = fetch_metrics(addr)?;
    if metric_u64(&parsed, "audit_mismatches") != 0 {
        return Err(format!("audit mismatches under soak: {parsed:?}"));
    }
    if metric_u64(&parsed, "cache_evictions") == 0 {
        return Err("budgets never forced a cache eviction".into());
    }
    let mut shed_count = metric_u64(&parsed, "admission_shed");
    if shed_count == 0 {
        // Bursts may have all landed in queue gaps; force the issue
        // with a few more concurrent waves before giving up.
        for _ in 0..30 {
            std::thread::scope(|s| {
                for worker in 0..SOAK_THREADS {
                    s.spawn(move || {
                        let seed = 77_000_000 + worker as u64;
                        let body = simulate_body(cfg, seed);
                        let _ = client::request_json(addr, "POST", "/simulate", &body);
                    });
                }
            });
            shed_count = metric_u64(&fetch_metrics(addr)?, "admission_shed");
            if shed_count > 0 {
                break;
            }
        }
        if shed_count == 0 {
            return Err("admission control never shed a request".into());
        }
    }

    // Footprints stay bounded: the disk cache within its budget (plus
    // one in-flight temp file of slack), the journal dir within its.
    let dir_total = |dir: &PathBuf| -> u64 {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter_map(|e| e.metadata().ok())
                    .filter(|m| m.is_file())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    };
    let cache_total = dir_total(&cache_dir);
    if cache_total > DISK_BUDGET + 64 * 1024 {
        return Err(format!(
            "disk cache overran its budget: {cache_total} bytes on disk, budget {DISK_BUDGET}"
        ));
    }
    let job_total = dir_total(&job_dir);
    if job_total > JOB_DIR_BUDGET {
        return Err(format!(
            "journal dir overran its budget: {job_total} bytes, budget {JOB_DIR_BUDGET}"
        ));
    }

    // Retention: the long-finished background job must expire — journal
    // reaped, poll answering the documented "gone" 404.
    let gone_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = client::request_json(addr, "GET", &poll_path, "")
            .map_err(|e| format!("expiry poll: {e}"))?;
        if status == 404 && body.contains("\"gone\": true") {
            break;
        }
        if Instant::now() >= gone_deadline {
            return Err(format!(
                "job {job_id} never expired: still answering {status}: {body}"
            ));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let journal_file = job_dir.join(format!("job-{job_id:x}.ptbj"));
    if journal_file.exists() {
        return Err(format!(
            "expired job's journal survived GC: {}",
            journal_file.display()
        ));
    }

    // Finally: budgets may cost recomputation, never correctness. The
    // same sweep on an unbudgeted daemon must be byte-identical.
    let (fresh, fresh_addr) = spawn_daemon(
        &binary,
        &[
            "--spawn-worker",
            "--addr",
            "127.0.0.1:0",
            "--job-dir",
            "off",
            "--workers",
            "2",
        ],
        &[],
        1,
    )?;
    fleet.children.push(fresh);
    let sweep = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, {}], \
         \"quick\": true, \"seed\": 42}}",
        cfg.network, cfg.policy, cfg.tw
    );
    let soaked = loop {
        let (status, body) = client::request_json(addr, "POST", "/sweep", &sweep)
            .map_err(|e| format!("soaked /sweep: {e}"))?;
        match status {
            200 => break body,
            503 => std::thread::sleep(Duration::from_millis(50)),
            _ => return Err(format!("soaked /sweep answered {status}: {body}")),
        }
    };
    let (status, pristine) = client::request_json(fresh_addr, "POST", "/sweep", &sweep)
        .map_err(|e| format!("pristine /sweep: {e}"))?;
    if status != 200 {
        return Err(format!("pristine /sweep answered {status}: {pristine}"));
    }
    if soaked != pristine {
        return Err(format!(
            "budgeted sweep diverged from the unbudgeted reference\n  soaked:   {soaked}\n  \
             pristine: {pristine}"
        ));
    }

    let evictions = metric_u64(&fetch_metrics(addr)?, "cache_evictions");
    let _ = client::request_json(addr, "POST", "/shutdown", "");
    let _ = client::request_json(fresh_addr, "POST", "/shutdown", "");
    drop(fleet);
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "{{\"label\": \"{}\", \"mode\": \"soak\", \"secs\": {secs}, \"ok\": {ok}, \
         \"sheds_seen\": {}, \"admission_shed\": {shed_count}, \
         \"cache_evictions\": {evictions}, \"disk_bytes\": {cache_total}, \
         \"journal_bytes\": {job_total}, \"bit_identical\": true}}",
        cfg.label,
        sheds.load(Ordering::Relaxed),
    );
    Ok(())
}

//! `ptb-load`: a closed-loop load generator and smoke checker for the
//! `ptb-serve` daemon.
//!
//! ```text
//! ptb-load --addr HOST:PORT --smoke
//! ptb-load --addr HOST:PORT --shutdown
//! ptb-load --addr HOST:PORT [--requests N] [--concurrency C]
//!          [--network NAME] [--policy LABEL] [--tw N]
//!          [--seed-mode unique|fixed] [--full] [--label TEXT]
//! ```
//!
//! Smoke mode drives `/healthz`, one quick `/simulate`, and `/metrics`,
//! checking each response; it exits nonzero on any failure (the CI
//! smoke stage runs this). `--shutdown` POSTs the `/shutdown` admin
//! route and exits zero iff the daemon acknowledged it. Load mode runs
//! `C` closed-loop workers
//! (each issues a request, waits for the full response, repeats) until
//! `N` total requests have completed, then prints a JSON summary with
//! throughput and latency percentiles to stdout.
//!
//! `--seed-mode unique` gives every request a distinct seed so each
//! one misses the server's activity cache ("cold"); `fixed` reuses one
//! seed so all but the first hit it ("warm"). Comparing the two
//! isolates what the shared cache buys under load; `BENCH_serve.json`
//! records exactly that comparison.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ptb_serve::client;

struct LoadConfig {
    addr: SocketAddr,
    smoke: bool,
    shutdown: bool,
    requests: usize,
    concurrency: usize,
    network: String,
    policy: String,
    tw: u32,
    quick: bool,
    seed_unique: bool,
    label: String,
}

fn main() {
    let cfg = parse_args();
    if cfg.shutdown {
        match client::request_json(cfg.addr, "POST", "/shutdown", "") {
            Ok((200, _)) => return,
            Ok((status, body)) => {
                eprintln!("shutdown answered {status}: {body}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if cfg.smoke {
        if let Err(msg) = run_smoke(&cfg) {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("smoke OK");
        return;
    }
    run_load(&cfg);
}

fn parse_args() -> LoadConfig {
    let mut cfg = LoadConfig {
        addr: "127.0.0.1:7878"
            .parse()
            .expect("default address must parse"),
        smoke: false,
        shutdown: false,
        requests: 16,
        concurrency: 4,
        network: "DVS-Gesture".into(),
        policy: "PTB+StSAP".into(),
        tw: 8,
        quick: true,
        seed_unique: false,
        label: String::new(),
    };
    if let Ok(addr) = std::env::var("PTB_ADDR") {
        cfg.addr = resolve_or_die(&addr);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = resolve_or_die(&value("--addr")),
            "--smoke" => cfg.smoke = true,
            "--shutdown" => cfg.shutdown = true,
            "--requests" => cfg.requests = parse_or_die(&value("--requests"), "--requests").max(1),
            "--concurrency" => {
                cfg.concurrency = parse_or_die(&value("--concurrency"), "--concurrency").max(1);
            }
            "--network" => cfg.network = value("--network"),
            "--policy" => cfg.policy = value("--policy"),
            "--tw" => cfg.tw = parse_or_die(&value("--tw"), "--tw") as u32,
            "--full" => cfg.quick = false,
            "--seed-mode" => match value("--seed-mode").as_str() {
                "unique" => cfg.seed_unique = true,
                "fixed" => cfg.seed_unique = false,
                other => {
                    eprintln!("error: --seed-mode wants unique|fixed, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--label" => cfg.label = value("--label"),
            "--help" | "-h" => {
                println!(
                    "usage: ptb-load [--addr HOST:PORT] (--smoke | --shutdown | \
                     [--requests N] [--concurrency C] [--network NAME] [--policy LABEL] \
                     [--tw N] [--seed-mode unique|fixed] [--full] [--label TEXT])"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn resolve_or_die(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("error: cannot resolve address {addr:?}");
            std::process::exit(2);
        })
}

fn parse_or_die(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants an integer, got {s:?}");
        std::process::exit(2);
    })
}

fn simulate_body(cfg: &LoadConfig, seed: u64) -> String {
    format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tw\": {}, \"quick\": {}, \"seed\": {seed}}}",
        cfg.network, cfg.policy, cfg.tw, cfg.quick
    )
}

/// Drives the core routes once each, verifying every response.
fn run_smoke(cfg: &LoadConfig) -> Result<(), String> {
    let (status, body) = client::request_json(cfg.addr, "GET", "/healthz", "")
        .map_err(|e| format!("/healthz: {e}"))?;
    if status != 200 || !body.contains("ok") {
        return Err(format!("/healthz answered {status}: {body}"));
    }

    let (status, body) =
        client::request_json(cfg.addr, "POST", "/simulate", &simulate_body(cfg, 42))
            .map_err(|e| format!("/simulate: {e}"))?;
    if status != 200 || !body.contains("\"layers\"") {
        return Err(format!("/simulate answered {status}: {body}"));
    }

    let sweep = format!(
        "{{\"network\": \"{}\", \"policy\": \"{}\", \"tws\": [1, {}], \"quick\": true}}",
        cfg.network, cfg.policy, cfg.tw
    );
    let (status, body) = client::request_json(cfg.addr, "POST", "/sweep", &sweep)
        .map_err(|e| format!("/sweep: {e}"))?;
    if status != 200 || !body.contains("\"edp\"") {
        return Err(format!("/sweep answered {status}: {body}"));
    }

    let (status, body) = client::request_json(cfg.addr, "GET", "/metrics", "")
        .map_err(|e| format!("/metrics: {e}"))?;
    if status != 200 || !body.contains("\"endpoints\"") {
        return Err(format!("/metrics answered {status}: {body}"));
    }
    // The counters must reflect the traffic this smoke run just sent.
    if !body.contains("\"requests\": ") || body.contains("\"accepted\": 0,") {
        return Err(format!("/metrics counters look dead: {body}"));
    }
    Ok(())
}

/// Closed-loop load: `concurrency` workers issue requests until
/// `requests` total complete; prints a JSON summary.
fn run_load(cfg: &LoadConfig) {
    let issued = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let latencies_us: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(cfg.requests));
    let started = Instant::now();

    std::thread::scope(|s| {
        for _ in 0..cfg.concurrency {
            s.spawn(|| loop {
                let i = issued.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.requests {
                    return;
                }
                let seed = if cfg.seed_unique { 1000 + i as u64 } else { 42 };
                let body = simulate_body(cfg, seed);
                let t0 = Instant::now();
                let ok = matches!(
                    client::request_json(cfg.addr, "POST", "/simulate", &body),
                    Ok((200, _))
                );
                let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                if ok {
                    latencies_us.lock().expect("latency lock").push(us);
                } else {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let wall = started.elapsed().as_secs_f64();
    let mut lat = latencies_us.into_inner().expect("latency lock");
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    };
    let ok = lat.len();
    println!(
        "{{\"label\": \"{}\", \"requests\": {}, \"ok\": {ok}, \"errors\": {}, \
         \"concurrency\": {}, \"seed_mode\": \"{}\", \"wall_s\": {wall:.3}, \
         \"throughput_rps\": {:.3}, \"p50_us\": {}, \"p99_us\": {}}}",
        cfg.label,
        cfg.requests,
        errors.load(Ordering::Relaxed),
        cfg.concurrency,
        if cfg.seed_unique { "unique" } else { "fixed" },
        ok as f64 / wall.max(1e-9),
        pct(0.50),
        pct(0.99),
    );
    if ok == 0 {
        std::process::exit(1);
    }
}

//! The `ptb-serve` daemon entry point.
//!
//! ```text
//! ptb-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--job-dir PATH|off] [--deadline-ms N] [--port-file PATH]
//! ```
//!
//! Flags override the `PTB_ADDR` / `PTB_WORKERS` / `PTB_QUEUE_CAP` /
//! `PTB_JOB_DIR` / `PTB_DEADLINE_MS` environment knobs. `--job-dir`
//! points the durable job journal somewhere other than the default
//! `results/.jobs` (`off` disables persistence); on boot the journal is
//! replayed, so background jobs survive crashes and `kill -9`.
//! `--deadline-ms` sets the default request deadline (`0` = none).
//! `--port-file` writes the bound port (one decimal line) after the
//! listener is up — bind port 0 and read the file to get an ephemeral
//! port race-free, which is how the CI smoke stage runs. The process
//! exits when a client POSTs `/shutdown`.

use ptb_serve::{Server, ServerConfig};

fn main() {
    let mut cfg = ServerConfig::from_env();
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => {
                cfg.workers = parse_or_die(&value("--workers"), "--workers").max(1);
            }
            "--queue-cap" => {
                cfg.queue_cap = parse_or_die(&value("--queue-cap"), "--queue-cap").max(1);
            }
            "--job-dir" => {
                cfg.job_dir = match value("--job-dir").as_str() {
                    "" | "off" | "none" => None,
                    dir => Some(dir.into()),
                };
            }
            "--deadline-ms" => {
                let ms = parse_or_die(&value("--deadline-ms"), "--deadline-ms");
                cfg.deadline_ms = (ms > 0).then_some(ms as u64);
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--help" | "-h" => {
                println!(
                    "usage: ptb-serve [--addr HOST:PORT] [--workers N] \
                     [--queue-cap N] [--job-dir PATH|off] [--deadline-ms N] \
                     [--port-file PATH]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::start(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    eprintln!(
        "ptb-serve listening on {} ({} workers, queue cap {}, cache {}, jobs {}, deadline {})",
        server.addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache.label(),
        cfg.job_dir
            .as_deref()
            .map_or("off".into(), |d| d.display().to_string()),
        cfg.deadline_ms
            .map_or("none".into(), |ms| format!("{ms} ms")),
    );
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", server.addr().port())) {
            eprintln!("error: could not write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    server.join();
    eprintln!("ptb-serve stopped");
}

fn parse_or_die(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants an integer, got {s:?}");
        std::process::exit(2);
    })
}

//! The daemon: a bounded job queue, a fixed worker pool, and the HTTP
//! route handlers.
//!
//! ## Request lifecycle
//!
//! The acceptor thread owns the listening socket. Each accepted
//! connection becomes a `Work::Conn` item on the bounded queue (or is
//! answered `503` + `Retry-After` on the spot when the queue is full —
//! backpressure is explicit, never an unbounded buffer). A pool worker
//! dequeues the connection, reads and routes the request, runs the
//! simulation on its own thread, and writes the response. One request
//! per connection.
//!
//! ## Sharded sweeps without deadlock
//!
//! `POST /sweep` fans its TW points out as `Work::Shard` items that
//! *other* workers can pick up, but the handling worker always claims
//! and runs shards itself too ([`SweepJob::run_shards`]). Shards are
//! claimed atomically, so the split adapts to whoever is free: on a
//! fully busy pool the handler simply runs the whole sweep alone, which
//! means a synchronous sweep can never deadlock waiting for workers
//! that are themselves waiting. Results merge by original index,
//! matching `ptb_bench::sweep_summary_cached` exactly.
//!
//! ## Fault tolerance
//!
//! Background jobs are journaled ([`crate::journal::JobJournal`]) when
//! a job directory is configured: submissions, per-shard completions,
//! and completion are appended durably, and [`Server::start`] replays
//! the journal so a crashed daemon resumes unfinished jobs — with their
//! original ids and without recomputing journaled shards. Journaling is
//! deliberately restricted to background jobs: the synchronous
//! `/simulate` and `/sweep` paths never touch the journal, so warm
//! request throughput is unaffected.
//!
//! Workers run every dequeued item under `catch_unwind`: a panicking
//! handler answers `500`, a panicking shard fails its job (see
//! [`SweepJob::run_shards_until`]), and either way the worker survives
//! (`panics_contained` in `/metrics`). Deadlines (`PTB_DEADLINE_MS`, or
//! a request's `deadline_ms`) are checked at dequeue and between sweep
//! shards; expiry answers `503` + `Retry-After`. `POST /shutdown`
//! drains gracefully: queued work completes, new pushes fail.
//!
//! ## Shared cache
//!
//! All workers share one [`ActivityCache`]: concurrent requests for the
//! same `(profile, neurons, timesteps, seed)` layer activity coalesce
//! into a single in-flight generation (see `ptb_bench::cache`), so a
//! burst of identical jobs pays the expensive step once.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ptb_accel::audit::AuditLevel;
use ptb_bench::sync::{lock_recover, wait_recover};
use ptb_bench::{run_network_verified, ActivityCache, CacheMode, RunOptions};

use crate::api;
use crate::http::{read_request, Request, RequestError, Response, READ_TIMEOUT};
use crate::jobs::{panic_message, JobRegistry, JobState, SweepJob};
use crate::journal::JobJournal;
use crate::metrics::Metrics;

/// `Retry-After` seconds suggested on backpressure responses. The
/// service's work items are sub-second in quick mode and a few seconds
/// at full fidelity, so "come back in a second" is honest guidance.
const RETRY_AFTER_SECS: u64 = 1;

/// Server configuration; see [`ServerConfig::from_env`] for the
/// environment knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 binds an ephemeral
    /// port (read it back from [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests and sweep shards.
    pub workers: usize,
    /// Maximum queued work items before new connections get `503`.
    pub queue_cap: usize,
    /// Cache mode for the shared [`ActivityCache`].
    pub cache: CacheMode,
    /// Directory for the durable job journal; `None` disables
    /// persistence (background jobs then live only in memory). The
    /// daemon defaults to `results/.jobs` via [`ServerConfig::from_env`];
    /// embedded/test servers opt in explicitly.
    pub job_dir: Option<PathBuf>,
    /// Default per-request deadline in milliseconds, measured from
    /// enqueue; `None` means no deadline. Requests may override with
    /// their own `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// Default audit level for every run ([`AuditLevel::Off`] unless
    /// `PTB_VERIFY` says otherwise); requests may override with their
    /// own `verify` field. Findings fail the response or job and count
    /// in `/metrics` (`audit_mismatches`, `acc_saturated`).
    pub verify: AuditLevel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            queue_cap: 64,
            cache: CacheMode::Mem,
            job_dir: None,
            deadline_ms: None,
            verify: AuditLevel::Off,
        }
    }
}

impl ServerConfig {
    /// Reads `PTB_ADDR` (bind address, default `127.0.0.1:7878`),
    /// `PTB_WORKERS` (pool size, default `max(2, cores)`),
    /// `PTB_QUEUE_CAP` (queue bound, default 64), `PTB_CACHE`
    /// (shared cache mode, default `mem`), `PTB_JOB_DIR` (job journal
    /// directory, default `results/.jobs`; `off`/`none`/empty disables),
    /// `PTB_DEADLINE_MS` (default request deadline; `0` or unset means
    /// none), and `PTB_VERIFY` (default audit level, `off`).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(addr) = std::env::var("PTB_ADDR") {
            cfg.addr = addr;
        }
        if let Some(n) = std::env::var("PTB_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.workers = n.max(1);
        }
        if let Some(n) = std::env::var("PTB_QUEUE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.queue_cap = n.max(1);
        }
        cfg.cache = CacheMode::from_env();
        cfg.job_dir = match std::env::var("PTB_JOB_DIR") {
            Ok(dir) => match dir.trim() {
                "" | "off" | "none" => None,
                other => Some(PathBuf::from(other)),
            },
            Err(_) => Some(PathBuf::from("results/.jobs")),
        };
        cfg.deadline_ms = std::env::var("PTB_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        cfg.verify = AuditLevel::from_env();
        cfg
    }
}

/// A unit of work for the pool.
enum Work {
    /// An accepted connection with a request to read, stamped with its
    /// enqueue time so deadlines cover queue wait.
    Conn(TcpStream, Instant),
    /// A sweep with unclaimed shards; the worker claims until dry.
    Shard(Arc<SweepJob>),
}

/// The bounded MPMC work queue.
struct Queue {
    items: Mutex<(VecDeque<Work>, bool)>, // (queue, closed)
    cv: Condvar,
    cap: usize,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            items: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless full or closed; on rejection the item is handed
    /// back so the caller can respond to (or drop) it.
    fn push(&self, work: Work) -> Result<(), Work> {
        let mut guard = lock_recover(&self.items);
        if guard.1 || guard.0.len() >= self.cap {
            return Err(work);
        }
        guard.0.push_back(work);
        drop(guard);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues, blocking. `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Work> {
        let mut guard = lock_recover(&self.items);
        loop {
            if let Some(work) = guard.0.pop_front() {
                return Some(work);
            }
            if guard.1 {
                return None;
            }
            guard = wait_recover(&self.cv, guard);
        }
    }

    /// Closes the queue: queued work still drains, new pushes fail, and
    /// idle workers wake to exit.
    fn close(&self) {
        lock_recover(&self.items).1 = true;
        self.cv.notify_all();
    }

    fn len(&self) -> usize {
        lock_recover(&self.items).0.len()
    }
}

/// State shared by the acceptor, every worker, and the handlers.
struct Shared {
    cache: ActivityCache,
    metrics: Metrics,
    jobs: JobRegistry,
    journal: Option<Arc<JobJournal>>,
    queue: Queue,
    workers: usize,
    deadline: Option<Duration>,
    /// Default audit level for requests that don't set `verify`.
    verify: AuditLevel,
    shutdown: AtomicBool,
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::join`] after a shutdown request, or send `POST /shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the job journal (when configured), and starts the
    /// acceptor and worker threads. Unfinished journaled jobs are
    /// re-registered under their original ids and their remaining
    /// shards offered to the pool.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let journal = cfg
            .job_dir
            .as_deref()
            .map(|dir| Arc::new(JobJournal::new(dir)));
        let shared = Arc::new(Shared {
            cache: ActivityCache::new(cfg.cache),
            metrics: Metrics::default(),
            jobs: JobRegistry::default(),
            journal,
            queue: Queue::new(cfg.queue_cap),
            workers: cfg.workers,
            deadline: cfg.deadline_ms.map(Duration::from_millis),
            verify: cfg.verify,
            shutdown: AtomicBool::new(false),
        });

        // Replay before any thread starts: the queue absorbs resumed
        // shards, and the workers pick them up the moment they spawn.
        replay_journal(&shared);

        let mut threads = Vec::with_capacity(cfg.workers + 1);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ptb-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared))
                .expect("spawn acceptor"),
        );
        for i in 0..cfg.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ptb-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from within the process (equivalent to
    /// `POST /shutdown`).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for every thread to exit (after a shutdown request).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Rebuilds the job registry from the journal at boot: completed jobs
/// reload their rows; unfinished ones resume with only the unjournaled
/// shards claimable.
fn replay_journal(shared: &Arc<Shared>) {
    let Some(journal) = &shared.journal else {
        return;
    };
    let mut max_id = 0u64;
    for replayed in journal.replay() {
        max_id = max_id.max(replayed.id);
        let opts = run_options(Some(replayed.quick), Some(replayed.seed), replayed.verify);
        let unfinished = !replayed.done;
        // Under a non-off verify level even a *finished* job goes back
        // to the pool: its replayed rows get recomputed and diffed
        // before it is served again (see `SweepJob::run_shards_until`).
        let needs_pool = unfinished || (replayed.verify.is_on() && !replayed.shards.is_empty());
        let job = Arc::new(
            SweepJob::resumed(
                replayed.spec,
                replayed.policy,
                replayed.tws,
                opts,
                replayed.shards,
            )
            .with_journal(Arc::clone(journal), replayed.id),
        );
        if !shared.jobs.insert(replayed.id, Arc::clone(&job)) {
            eprintln!(
                "warning: job registry full; journaled job {} not resumed",
                replayed.id
            );
            continue;
        }
        if needs_pool && shared.queue.push(Work::Shard(job)).is_err() {
            // Queue smaller than the backlog of resumed jobs: this one
            // stays registered but idle until the next restart.
            eprintln!(
                "warning: work queue full; journaled job {} resumes on next boot",
                replayed.id
            );
        }
    }
    shared.jobs.bump_next_id(max_id + 1);
}

/// Flags shutdown and unblocks the acceptor with a wake-up connection.
fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // The acceptor blocks in accept(); a throwaway connection wakes it
    // so it can observe the flag. Errors don't matter: if the connect
    // fails the listener is already gone.
    let _ = TcpStream::connect(addr);
    shared.queue.close();
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
        if let Err(Work::Conn(mut rejected, _)) =
            shared.queue.push(Work::Conn(stream, Instant::now()))
        {
            shared
                .metrics
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            Response::unavailable("work queue is full, try again later", RETRY_AFTER_SECS)
                .write_to(&mut rejected);
        }
    }
    shared.queue.close();
}

fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.queue.pop() {
        // Containment boundary: nothing a request or shard does may
        // take the worker (and with it the daemon) down. Shard panics
        // are already absorbed inside `run_shards_until`; this guards
        // the handlers and the `worker_dequeue` failpoint itself.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = ptb_bench::failpoint!("worker_dequeue");
            match work {
                Work::Conn(mut stream, enqueued) => handle_conn(shared, &mut stream, enqueued),
                Work::Shard(job) => {
                    job.run_shards_until(&shared.cache, None, Some(&shared.metrics));
                }
            }
        }));
        if caught.is_err() {
            shared
                .metrics
                .panics_contained
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_conn(shared: &Shared, stream: &mut TcpStream, enqueued: Instant) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_request_error(stream, &e);
            return;
        }
    };
    // Deadline check at dequeue: a request that waited out its budget
    // in the queue is shed before any simulation work starts.
    if let Some(deadline) = shared.deadline {
        if enqueued.elapsed() >= deadline {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            Response::unavailable(
                &format!("deadline ({} ms) expired in queue", deadline.as_millis()),
                RETRY_AFTER_SECS,
            )
            .write_to(stream);
            return;
        }
    }
    let started = Instant::now();
    let (endpoint, response) =
        match catch_unwind(AssertUnwindSafe(|| route(shared, &request, enqueued))) {
            Ok(r) => r,
            Err(payload) => {
                shared
                    .metrics
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                (
                    Endpoint::Admin,
                    Response::error(
                        500,
                        &format!("handler panicked: {}", panic_message(&payload)),
                    ),
                )
            }
        };
    let metrics = match endpoint {
        Endpoint::Simulate => &shared.metrics.simulate,
        Endpoint::Sweep => &shared.metrics.sweep,
        Endpoint::Jobs => &shared.metrics.jobs,
        Endpoint::Admin => &shared.metrics.admin,
    };
    metrics.record(response.status, started.elapsed());
    response.write_to(stream);
    // /shutdown responds first, then stops the world.
    if endpoint == Endpoint::Admin && request.path == "/shutdown" && response.status == 200 {
        if let Ok(addr) = stream.local_addr() {
            trigger_shutdown(shared, addr);
        }
    }
}

fn respond_request_error(stream: &mut TcpStream, e: &RequestError) {
    Response::error(e.status(), &e.detail()).write_to(stream);
}

/// Which metrics bucket a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Simulate,
    Sweep,
    Jobs,
    Admin,
}

fn route(shared: &Shared, req: &Request, enqueued: Instant) -> (Endpoint, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => (Endpoint::Simulate, handle_simulate(shared, &req.body)),
        ("POST", "/sweep") => (Endpoint::Sweep, handle_sweep(shared, &req.body, enqueued)),
        ("GET", path) if path.starts_with("/jobs/") => {
            (Endpoint::Jobs, handle_job_poll(shared, path))
        }
        ("GET", "/healthz") => (
            Endpoint::Admin,
            Response::json("{\"status\": \"ok\"}".into()),
        ),
        ("GET", "/metrics") => (Endpoint::Admin, handle_metrics(shared)),
        ("POST", "/shutdown") => (
            Endpoint::Admin,
            Response::json("{\"status\": \"shutting down\"}".into()),
        ),
        (_, "/simulate" | "/sweep" | "/healthz" | "/metrics" | "/shutdown") => (
            Endpoint::Admin,
            Response::error(405, &format!("method {} not allowed here", req.method)),
        ),
        _ => (
            Endpoint::Admin,
            Response::error(404, &format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// Builds the per-request run options: quick or full fidelity, caller's
/// seed, the resolved audit level, serial position scan (parallelism
/// comes from the pool, not from within a layer).
fn run_options(quick: Option<bool>, seed: Option<u64>, verify: AuditLevel) -> RunOptions {
    let mut opts = if quick.unwrap_or(false) {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(seed) = seed {
        opts.seed = seed;
    }
    opts.verify = verify;
    opts
}

/// Resolves a request's effective deadline: its own `deadline_ms` wins,
/// else the server default; measured from enqueue.
fn effective_deadline(
    shared: &Shared,
    request_ms: Option<u64>,
    enqueued: Instant,
) -> Option<Instant> {
    request_ms
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .or(shared.deadline)
        .map(|d| enqueued + d)
}

fn handle_simulate(shared: &Shared, body: &[u8]) -> Response {
    let req: api::SimulateRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let spec = match api::resolve_network(&req.network) {
        Ok(s) => s,
        Err(e) => return Response::error(422, &e.0),
    };
    if let Err(e) = api::validate_tw(req.tw) {
        return Response::error(422, &e.0);
    }
    let verify = match api::validate_verify(req.verify.as_deref(), shared.verify) {
        Ok(v) => v,
        Err(e) => return Response::error(422, &e.0),
    };
    let opts = run_options(req.quick, req.seed, verify);
    let (report, audit) = run_network_verified(&spec, req.policy.0, req.tw, &opts, &shared.cache);
    shared
        .metrics
        .audit_mismatches
        .fetch_add(audit.mismatches, Ordering::Relaxed);
    shared
        .metrics
        .acc_saturated
        .fetch_add(audit.saturated, Ordering::Relaxed);
    if !audit.is_clean() {
        // The report diverged from the reference model: serve the
        // findings, never the untrustworthy numbers.
        let findings = serde_json::to_string(&audit).unwrap_or_else(|_| "null".into());
        let mut resp = Response::json(format!(
            "{{\"error\": \"simulation failed audit at level {}\", \"audit\": {findings}}}",
            audit.level.label()
        ));
        resp.status = 500;
        return resp;
    }
    match serde_json::to_string(&report) {
        Ok(json) => Response::json(json),
        Err(_) => Response::error(500, "report serialization failed"),
    }
}

fn handle_sweep(shared: &Shared, body: &[u8], enqueued: Instant) -> Response {
    let req: api::SweepRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let spec = match api::resolve_network(&req.network) {
        Ok(s) => s,
        Err(e) => return Response::error(422, &e.0),
    };
    if let Err(e) = api::validate_tws(&req.tws) {
        return Response::error(422, &e.0);
    }
    let verify = match api::validate_verify(req.verify.as_deref(), shared.verify) {
        Ok(v) => v,
        Err(e) => return Response::error(422, &e.0),
    };
    let quick = req.quick.unwrap_or(false);
    let opts = run_options(req.quick, req.seed, verify);
    let seed = opts.seed;
    let deadline = effective_deadline(shared, req.deadline_ms, enqueued);

    if req.background.unwrap_or(false) {
        // Durable path: reserve the id first so the journal file name
        // is final, register, then journal the submission *before*
        // offering shards — a shard record must never precede its
        // submit record.
        let id = shared.jobs.reserve_id();
        let mut job = SweepJob::new(spec, req.policy.0, req.tws.clone(), opts);
        if let Some(journal) = &shared.journal {
            job = job.with_journal(Arc::clone(journal), id);
        }
        let job = Arc::new(job);
        if !shared.jobs.insert(id, Arc::clone(&job)) {
            return Response::unavailable("job registry is full", RETRY_AFTER_SECS);
        }
        if let Some(journal) = &shared.journal {
            journal.log_submit(id, &job.spec, job.policy, &job.tws, quick, seed, verify);
        }
        let offered = offer_shards(shared, &job);
        // Guarantee progress even if no shard item could be offered
        // (full queue, or a single-worker pool): run the shards here
        // before answering, trading response latency for liveness.
        if offered == 0 {
            job.run_shards_until(&shared.cache, deadline, Some(&shared.metrics));
        }
        let mut resp = Response::json(format!("{{\"job\": {id}, \"total\": {}}}", job.tws.len()));
        resp.status = 202;
        return resp;
    }

    // Synchronous: this handler claims shards alongside the pool, then
    // waits out any shard still running on another worker.
    let job = Arc::new(SweepJob::new(spec, req.policy.0, req.tws.clone(), opts));
    offer_shards(shared, &job);
    job.run_shards_until(&shared.cache, deadline, Some(&shared.metrics));
    let terminal = match deadline {
        Some(d) => job.wait_until(d),
        None => {
            job.wait();
            true
        }
    };
    if !terminal {
        shared
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        return Response::unavailable(
            &format!(
                "deadline expired with {}/{} shards complete",
                job.completed(),
                job.tws.len()
            ),
            RETRY_AFTER_SECS,
        );
    }
    if let Some(reason) = job.failed() {
        let audit = job.audit();
        if !audit.is_clean() {
            let findings = serde_json::to_string(&audit).unwrap_or_else(|_| "null".into());
            let reason_json =
                serde_json::to_string(&format!("sweep failed: {reason}")).expect("string");
            let mut resp = Response::json(format!(
                "{{\"error\": {reason_json}, \"audit\": {findings}}}"
            ));
            resp.status = 500;
            return resp;
        }
        return Response::error(500, &format!("sweep failed: {reason}"));
    }
    match job.rows() {
        Some(rows) => match serde_json::to_string(&rows) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(500, "sweep serialization failed"),
        },
        None => Response::error(500, "sweep neither completed nor failed"),
    }
}

/// Offers a job's shards to idle workers: one queue item per extra
/// worker that could plausibly help. Items that don't fit (queue full)
/// are simply not offered — claiming keeps correctness independent of
/// who shows up. Returns how many items were enqueued.
fn offer_shards(shared: &Shared, job: &Arc<SweepJob>) -> usize {
    let helpers = shared.workers.saturating_sub(1).min(job.tws.len());
    let mut offered = 0;
    for _ in 0..helpers {
        if shared.queue.push(Work::Shard(Arc::clone(job))).is_err() {
            break;
        }
        offered += 1;
    }
    offered
}

fn handle_job_poll(shared: &Shared, path: &str) -> Response {
    let id_str = &path["/jobs/".len()..];
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::error(400, &format!("malformed job id {id_str:?}"));
    };
    let Some(job) = shared.jobs.get(id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    let completed = job.completed();
    let total = job.tws.len();
    // Always present: all-zeros when the job ran unverified, findings
    // (typed, with first-divergence coordinates) when the audit fired.
    let audit = serde_json::to_string(&job.audit()).unwrap_or_else(|_| "null".into());
    match job.state() {
        JobState::Failed { reason } => Response::json(format!(
            "{{\"id\": {id}, \"done\": false, \"failed\": true, \"error\": {}, \
             \"completed\": {completed}, \"total\": {total}, \"audit\": {audit}}}",
            serde_json::to_string(&reason).expect("string serialization"),
        )),
        JobState::Done => match job.rows().map(|r| serde_json::to_string(&r)) {
            Some(Ok(json)) => Response::json(format!(
                "{{\"id\": {id}, \"done\": true, \"failed\": false, \
                 \"completed\": {completed}, \"total\": {total}, \
                 \"audit\": {audit}, \"rows\": {json}}}"
            )),
            _ => Response::error(500, "row serialization failed"),
        },
        JobState::Running => Response::json(format!(
            "{{\"id\": {id}, \"done\": false, \"failed\": false, \
             \"completed\": {completed}, \"total\": {total}, \"audit\": {audit}}}"
        )),
    }
}

fn handle_metrics(shared: &Shared) -> Response {
    let m = &shared.metrics;
    let cache = shared.cache.stats();
    let journal = match &shared.journal {
        Some(j) => {
            let s = j.stats();
            format!(
                "{{\"appends\": {}, \"append_errors\": {}, \"journal_recovered\": {}, \
                 \"journal_discarded\": {}, \"reloaded_jobs\": {}, \"resumed_jobs\": {}, \
                 \"replayed_shards\": {}}}",
                s.appends,
                s.append_errors,
                s.recovered,
                s.discarded,
                s.reloaded_jobs,
                s.resumed_jobs,
                s.replayed_shards,
            )
        }
        None => "null".into(),
    };
    Response::json(format!(
        "{{\"accepted\": {}, \"rejected_queue_full\": {}, \"bad_requests\": {}, \
         \"panics_contained\": {}, \"deadline_expired\": {}, \
         \"audit_mismatches\": {}, \"acc_saturated\": {}, \"verify\": \"{}\", \
         \"queue_depth\": {}, \"workers\": {}, \
         \"cache\": {{\"mem_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"coalesced\": {}}}, \
         \"journal\": {journal}, \
         \"endpoints\": {{\"simulate\": {}, \"sweep\": {}, \"jobs\": {}, \"admin\": {}}}}}",
        m.accepted.load(Ordering::Relaxed),
        m.rejected_queue_full.load(Ordering::Relaxed),
        m.bad_requests.load(Ordering::Relaxed),
        m.panics_contained.load(Ordering::Relaxed),
        m.deadline_expired.load(Ordering::Relaxed),
        m.audit_mismatches.load(Ordering::Relaxed),
        m.acc_saturated.load(Ordering::Relaxed),
        shared.verify.label(),
        shared.queue.len(),
        shared.workers,
        cache.mem_hits,
        cache.disk_hits,
        cache.misses,
        cache.coalesced,
        m.simulate.to_json(),
        m.sweep.to_json(),
        m.jobs.to_json(),
        m.admin.to_json(),
    ))
}

/// Parses a JSON request body, mapping failures to 400 with detail.
fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad request body: {e}")))
}

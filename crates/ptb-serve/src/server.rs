//! The transport layer: a bounded job queue, a fixed worker pool, and
//! the HTTP connection loop that feeds the codec-independent
//! [`Engine`].
//!
//! ## Request lifecycle
//!
//! The acceptor thread owns the listening socket. Each accepted
//! connection becomes a `Work::Conn` item on the bounded queue (or is
//! answered `503` + `Retry-After` on the spot when the queue is full —
//! backpressure is explicit, never an unbounded buffer). A pool worker
//! dequeues the connection and serves it with `handle_conn`: read a
//! request, decode it in whichever codec the `Content-Type` negotiated
//! (JSON or binary `PTBW1`, see [`crate::wire`]), execute it on the
//! shared [`Engine`], render the [`Outcome`] back in the same codec,
//! and — under HTTP/1.1 keep-alive — loop for the next request on the
//! same connection. Leftover bytes stay buffered between requests
//! ([`crate::http::ConnReader`]), so clients may pipeline.
//!
//! The engine/transport split is strict: this module owns sockets,
//! framing, codecs, and the worker pool; [`crate::engine`] owns the
//! simulation state and produces codec-free [`Outcome`]s. Both codecs
//! render the same `Outcome`, which keeps responses bit-identical
//! across codecs (property-tested in `tests/codec_equivalence.rs`) and
//! makes a future cluster RPC a third renderer, not a rewrite. The
//! wire contract lives in `docs/PROTOCOL.md`.
//!
//! ## Keep-alive without starvation
//!
//! A kept-alive connection pins a worker, and the pool is bounded, so
//! the loop yields deliberately: the server closes (with
//! `Connection: close`) after an error response, after
//! [`MAX_REQUESTS_PER_CONN`] requests, at shutdown, and — the
//! starvation guard — whenever the connection has no pipelined bytes
//! buffered while other work sits queued. An idle reused connection is
//! dropped after [`KEEPALIVE_IDLE`].
//!
//! ## Sharded sweeps without deadlock
//!
//! `POST /sweep` fans its TW points out as `Work::Shard` items that
//! *other* workers can pick up, but the handling worker always claims
//! and runs shards itself too ([`SweepJob::run_shards_until`]). Shards
//! are claimed atomically, so the split adapts to whoever is free: on a
//! fully busy pool the handler simply runs the whole sweep alone, which
//! means a synchronous sweep can never deadlock waiting for workers
//! that are themselves waiting. Results merge by original index,
//! matching `ptb_bench::sweep_summary_cached` exactly.
//!
//! ## Fault tolerance
//!
//! Background jobs are journaled ([`crate::journal::JobJournal`]) when
//! a job directory is configured, and [`Server::start`] replays the
//! journal so a crashed daemon resumes unfinished jobs (see
//! [`Engine::replay_journal`]). Workers run every dequeued item under
//! `catch_unwind`: a panicking handler answers `500`, a panicking shard
//! fails its job, and either way the worker survives
//! (`panics_contained` in `/metrics`). Deadlines are checked at dequeue
//! and between sweep shards; expiry answers `503` + `Retry-After`.
//! `POST /shutdown` drains gracefully: queued work completes, new
//! pushes fail.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ptb_accel::audit::AuditLevel;
use ptb_bench::cache::parse_bytes_env;
use ptb_bench::sync::{lock_recover, wait_recover};
use ptb_bench::{ActivityCache, CacheBudget, CacheMode};
use serde::Value;

use crate::api;
use crate::engine::{Engine, Outcome, RETRY_AFTER_SECS};
use crate::http::{
    Codec, ConnReader, Request, RequestError, Response, KEEPALIVE_IDLE, MAX_REQUESTS_PER_CONN,
    READ_TIMEOUT,
};
use crate::jobs::{panic_message, JobRegistry, JobState, SweepJob};
use crate::journal::JobJournal;
use crate::metrics::Metrics;
use crate::wire;

/// Server configuration; see [`ServerConfig::from_env`] for the
/// environment knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 binds an ephemeral
    /// port (read it back from [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests and sweep shards.
    pub workers: usize,
    /// Maximum queued work items before new connections get `503`.
    pub queue_cap: usize,
    /// Cache mode for the shared [`ActivityCache`].
    pub cache: CacheMode,
    /// Directory for the durable job journal; `None` disables
    /// persistence (background jobs then live only in memory). The
    /// daemon defaults to `results/.jobs` via [`ServerConfig::from_env`];
    /// embedded/test servers opt in explicitly.
    pub job_dir: Option<PathBuf>,
    /// Default per-request deadline in milliseconds, measured from
    /// enqueue; `None` means no deadline. Requests may override with
    /// their own `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// Default audit level for every run ([`AuditLevel::Off`] unless
    /// `PTB_VERIFY` says otherwise); requests may override with their
    /// own `verify` field. Findings fail the response or job and count
    /// in `/metrics` (`audit_mismatches`, `acc_saturated`).
    pub verify: AuditLevel,
    /// Directory of the disk cache store (only used in
    /// [`CacheMode::Disk`]); defaults to `results/.cache`.
    pub cache_dir: PathBuf,
    /// Byte budgets bounding the shared cache
    /// (`PTB_CACHE_MEM_BYTES` / `PTB_CACHE_DISK_BYTES`).
    pub cache_budget: CacheBudget,
    /// Admission watermark (`PTB_MEM_WATERMARK_BYTES`): heavy requests
    /// are shed with `503` while the cache's resident bytes exceed it.
    pub mem_watermark: Option<u64>,
    /// How long terminal jobs (and their journal/quarantine files) are
    /// retained before GC (`PTB_JOB_RETAIN`, seconds).
    pub job_retain: Duration,
    /// Byte budget for the journal directory (`PTB_JOB_DIR_BYTES`).
    pub job_dir_bytes: Option<u64>,
}

/// Default retention for terminal jobs and their durable files.
pub const DEFAULT_JOB_RETAIN: Duration = Duration::from_secs(600);

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            queue_cap: 64,
            cache: CacheMode::Mem,
            job_dir: None,
            deadline_ms: None,
            verify: AuditLevel::Off,
            cache_dir: PathBuf::from("results/.cache"),
            cache_budget: CacheBudget::unlimited(),
            mem_watermark: None,
            job_retain: DEFAULT_JOB_RETAIN,
            job_dir_bytes: None,
        }
    }
}

impl ServerConfig {
    /// Reads `PTB_ADDR` (bind address, default `127.0.0.1:7878`),
    /// `PTB_WORKERS` (pool size, default `max(2, cores)`),
    /// `PTB_QUEUE_CAP` (queue bound, default 64), `PTB_CACHE`
    /// (shared cache mode, default `mem`), `PTB_JOB_DIR` (job journal
    /// directory, default `results/.jobs`; `off`/`none`/empty disables),
    /// `PTB_DEADLINE_MS` (default request deadline; `0` or unset means
    /// none), and `PTB_VERIFY` (default audit level, `off`).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(addr) = std::env::var("PTB_ADDR") {
            cfg.addr = addr;
        }
        if let Some(n) = std::env::var("PTB_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.workers = n.max(1);
        }
        if let Some(n) = std::env::var("PTB_QUEUE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.queue_cap = n.max(1);
        }
        cfg.cache = CacheMode::from_env();
        cfg.job_dir = match std::env::var("PTB_JOB_DIR") {
            Ok(dir) => match dir.trim() {
                "" | "off" | "none" => None,
                other => Some(PathBuf::from(other)),
            },
            Err(_) => Some(PathBuf::from("results/.jobs")),
        };
        cfg.deadline_ms = std::env::var("PTB_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        cfg.verify = AuditLevel::from_env();
        if let Ok(dir) = std::env::var("PTB_CACHE_DIR") {
            if !dir.trim().is_empty() {
                cfg.cache_dir = PathBuf::from(dir);
            }
        }
        cfg.cache_budget = CacheBudget::from_env();
        cfg.mem_watermark = parse_bytes_env("PTB_MEM_WATERMARK_BYTES");
        cfg.job_retain = match std::env::var("PTB_JOB_RETAIN") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" => DEFAULT_JOB_RETAIN,
                // Effectively forever: the pre-retention behavior.
                "off" | "none" => Duration::from_secs(u64::MAX),
                secs => match secs.parse::<u64>() {
                    Ok(n) => Duration::from_secs(n),
                    Err(_) => {
                        eprintln!("warning: unparseable PTB_JOB_RETAIN={v:?}; using default");
                        DEFAULT_JOB_RETAIN
                    }
                },
            },
            Err(_) => DEFAULT_JOB_RETAIN,
        };
        cfg.job_dir_bytes = parse_bytes_env("PTB_JOB_DIR_BYTES");
        cfg
    }
}

/// A unit of work for the pool.
enum Work {
    /// An accepted connection with requests to read, stamped with its
    /// enqueue time so deadlines cover queue wait.
    Conn(TcpStream, Instant),
    /// A sweep with unclaimed shards; the worker claims until dry.
    Shard(Arc<SweepJob>),
}

/// The bounded MPMC work queue.
struct Queue {
    items: Mutex<(VecDeque<Work>, bool)>, // (queue, closed)
    cv: Condvar,
    cap: usize,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            items: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless full or closed; on rejection the item is handed
    /// back so the caller can respond to (or drop) it.
    fn push(&self, work: Work) -> Result<(), Work> {
        let mut guard = lock_recover(&self.items);
        if guard.1 || guard.0.len() >= self.cap {
            return Err(work);
        }
        guard.0.push_back(work);
        drop(guard);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues, blocking. `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Work> {
        let mut guard = lock_recover(&self.items);
        loop {
            if let Some(work) = guard.0.pop_front() {
                return Some(work);
            }
            if guard.1 {
                return None;
            }
            guard = wait_recover(&self.cv, guard);
        }
    }

    /// Closes the queue: queued work still drains, new pushes fail, and
    /// idle workers wake to exit.
    fn close(&self) {
        lock_recover(&self.items).1 = true;
        self.cv.notify_all();
    }

    fn len(&self) -> usize {
        lock_recover(&self.items).0.len()
    }
}

/// State shared by the acceptor, every worker, and the handlers: the
/// codec-independent [`Engine`] plus the transport's own queue and
/// lifecycle flags.
struct Shared {
    engine: Engine,
    queue: Queue,
    workers: usize,
    shutdown: AtomicBool,
    /// Process-start nonce echoed on `/healthz`: a fleet prober that
    /// sees it change knows the worker *restarted* (losing its
    /// in-memory cache and epoch watermark) rather than merely
    /// answering a slow probe. Never zero — zero is the prober's
    /// "not yet known" sentinel.
    generation: u64,
    /// Highest dispatch epoch this worker has seen on a `/sweep`
    /// request. Dispatches carrying a *lower* epoch are from a deposed
    /// (zombie) coordinator and are rejected with `409` — fencing at
    /// the worker boundary, see `docs/PROTOCOL.md` §7.
    epoch_seen: AtomicU64,
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::join`] after a shutdown request, or send `POST /shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the job journal (when configured), and starts the
    /// acceptor and worker threads. Unfinished journaled jobs are
    /// re-registered under their original ids and their remaining
    /// shards offered to the pool.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let journal = cfg
            .job_dir
            .as_deref()
            .map(|dir| Arc::new(JobJournal::new(dir)));
        let shared = Arc::new(Shared {
            engine: Engine {
                cache: ActivityCache::with_budget(cfg.cache, &cfg.cache_dir, cfg.cache_budget),
                metrics: Metrics::default(),
                jobs: JobRegistry::default(),
                journal,
                deadline: cfg.deadline_ms.map(Duration::from_millis),
                verify: cfg.verify,
                report_memo: Mutex::new(HashMap::new()),
                mem_watermark: cfg.mem_watermark,
                job_retain: cfg.job_retain,
                job_dir_bytes: cfg.job_dir_bytes,
            },
            queue: Queue::new(cfg.queue_cap),
            workers: cfg.workers,
            shutdown: AtomicBool::new(false),
            generation: start_generation(),
            epoch_seen: AtomicU64::new(0),
        });

        // Replay before any thread starts: the queue absorbs resumed
        // shards, and the workers pick them up the moment they spawn.
        shared
            .engine
            .replay_journal(|job| shared.queue.push(Work::Shard(job)).is_ok());

        let mut threads = Vec::with_capacity(cfg.workers + 2);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ptb-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared))
                .expect("spawn acceptor"),
        );
        let gc_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ptb-gc".into())
                .spawn(move || gc_loop(&gc_shared))
                .expect("spawn gc"),
        );
        for i in 0..cfg.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ptb-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from within the process (equivalent to
    /// `POST /shutdown`).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for every thread to exit (after a shutdown request).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// The process-start generation nonce: wall-clock nanoseconds XOR the
/// pid, forced odd so it can never be zero (the prober's "unknown"
/// sentinel). Two starts of the same worker address collide only if
/// they land on the same nanosecond with the same pid.
fn start_generation() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    (nanos ^ (u64::from(std::process::id()) << 32)) | 1
}

/// Flags shutdown and unblocks the acceptor with a wake-up connection.
fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // The acceptor blocks in accept(); a throwaway connection wakes it
    // so it can observe the flag. Errors don't matter: if the connect
    // fails the listener is already gone.
    let _ = TcpStream::connect(addr);
    shared.queue.close();
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .engine
            .metrics
            .accepted
            .fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
        // Keep-alive exchanges are latency-bound request/response
        // traffic; Nagle batching would serialize them on delayed ACKs.
        let _ = stream.set_nodelay(true);
        if let Err(Work::Conn(rejected, _)) = shared.queue.push(Work::Conn(stream, Instant::now()))
        {
            shared
                .engine
                .metrics
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            shed_connection(rejected);
        }
    }
    shared.queue.close();
}

/// Sheds one accepted connection with a 503 without provoking a TCP
/// reset. The client has usually written its whole request by the time
/// the queue-full check fires; closing the socket with those bytes
/// unread makes the kernel answer with RST, which can destroy the
/// in-flight 503 before the client reads it. Draining what has arrived,
/// answering, then half-closing lets the connection end in a clean FIN
/// and the client reliably observe the `Retry-After`. Reads are bounded
/// to ~20 ms apiece so a slow-loris client cannot pin the acceptor.
fn shed_connection(mut stream: std::net::TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut scratch = [0u8; 4096];
    // Small requests arrive whole before accept returns; one read
    // usually drains everything the client will ever send.
    let _ = stream.read(&mut scratch);
    Response::unavailable("work queue is full, try again later", RETRY_AFTER_SECS)
        .write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Wait out the client reading the 503 (EOF, trailing bytes, or the
    // 20 ms timeout — whichever ends first, a few rounds at most).
    for _ in 0..4 {
        if !matches!(stream.read(&mut scratch), Ok(n) if n > 0) {
            break;
        }
    }
}

/// How often the GC thread runs a retention pass.
const GC_TICK: Duration = Duration::from_millis(500);

/// The resource-governance loop: one [`Engine::gc`] pass per
/// [`GC_TICK`], polling the shutdown flag between short sleeps so
/// `join` never waits out a full tick.
fn gc_loop(shared: &Shared) {
    let mut last = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() >= GC_TICK {
            shared.engine.gc();
            last = Instant::now();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.queue.pop() {
        // Containment boundary: nothing a request or shard does may
        // take the worker (and with it the daemon) down. Shard panics
        // are already absorbed inside `run_shards_until`; this guards
        // the handlers and the `worker_dequeue` failpoint itself.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = ptb_bench::failpoint!("worker_dequeue");
            match work {
                Work::Conn(stream, enqueued) => handle_conn(shared, &stream, enqueued),
                Work::Shard(job) => {
                    job.run_shards_until(&shared.engine.cache, None, Some(&shared.engine.metrics));
                }
            }
        }));
        if caught.is_err() {
            shared
                .engine
                .metrics
                .panics_contained
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serves one connection until it closes: the keep-alive loop.
///
/// Reads (`&TcpStream` is `Read`) go through a [`ConnReader`] so bytes
/// past the current request stay buffered for the next one
/// (pipelining); writes go straight to the stream. The first request
/// keeps the accept-time [`READ_TIMEOUT`]; subsequent requests get the
/// shorter [`KEEPALIVE_IDLE`] budget. Deadlines measured from enqueue
/// apply to the *first* request only — later requests on the
/// connection never waited in the accept queue, so their deadline
/// starts when they are read.
fn handle_conn(shared: &Shared, stream: &TcpStream, enqueued: Instant) {
    let mut reader = ConnReader::new(stream);
    let mut served: usize = 0;
    loop {
        let had_buffered = reader.buffered() > 0;
        let reads_before = reader.socket_reads();
        let request = match reader.read_request() {
            Ok(r) => r,
            Err(RequestError::Idle) => return, // clean end between requests
            Err(e) => {
                shared
                    .engine
                    .metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                Response::error(e.status(), &e.detail()).write_to(&mut &*stream);
                return;
            }
        };
        let metrics = &shared.engine.metrics;
        if served > 0 {
            metrics.keepalive_reused.fetch_add(1, Ordering::Relaxed);
            if had_buffered && reader.socket_reads() == reads_before {
                // The whole request was already buffered when the last
                // response went out: the client wrote ahead.
                metrics.pipelined.fetch_add(1, Ordering::Relaxed);
            }
        }
        match request.codec {
            Codec::Json => metrics.codec_json.fetch_add(1, Ordering::Relaxed),
            Codec::Binary => metrics.codec_bin.fetch_add(1, Ordering::Relaxed),
        };

        // Deadline check at dequeue: a request that waited out its
        // budget in the queue is shed before any simulation work
        // starts. Only the first request ever waited there.
        let req_enqueued = if served == 0 {
            enqueued
        } else {
            Instant::now()
        };
        let expired_in_queue = served == 0
            && shared
                .engine
                .deadline
                .is_some_and(|deadline| enqueued.elapsed() >= deadline);
        let started = Instant::now();
        let (endpoint, mut response) = if expired_in_queue {
            metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let deadline_ms = shared.engine.deadline.unwrap_or_default().as_millis();
            let outcome = Outcome::Error {
                status: 503,
                detail: format!("deadline ({deadline_ms} ms) expired in queue"),
                retry_after: Some(RETRY_AFTER_SECS),
                audit: None,
            };
            (Endpoint::Admin, render(&outcome, request.codec))
        } else {
            match catch_unwind(AssertUnwindSafe(|| route(shared, &request, req_enqueued))) {
                Ok(r) => r,
                Err(payload) => {
                    metrics.panics_contained.fetch_add(1, Ordering::Relaxed);
                    (
                        Endpoint::Admin,
                        Response::error(
                            500,
                            &format!("handler panicked: {}", panic_message(&payload)),
                        ),
                    )
                }
            }
        };
        served += 1;

        // Close policy: the client asked; or the request errored (4xx
        // responses often follow framing damage, so resynchronize); or
        // the per-connection cap or shutdown hit; or — the starvation
        // guard — this connection has nothing more buffered while other
        // work waits for a worker.
        let close = !request.keep_alive
            || response.status >= 400
            || served >= MAX_REQUESTS_PER_CONN
            || shared.shutdown.load(Ordering::SeqCst)
            || (reader.buffered() == 0 && shared.queue.len() > 0);
        response.close = close;
        let endpoint_metrics = match endpoint {
            Endpoint::Simulate => &metrics.simulate,
            Endpoint::Sweep => &metrics.sweep,
            Endpoint::Jobs => &metrics.jobs,
            Endpoint::Admin => &metrics.admin,
        };
        endpoint_metrics.record(response.status, started.elapsed());
        response.write_to(&mut &*stream);
        // /shutdown responds first, then stops the world.
        if endpoint == Endpoint::Admin && request.path == "/shutdown" && response.status == 200 {
            if let Ok(addr) = stream.local_addr() {
                trigger_shutdown(shared, addr);
            }
            return;
        }
        if close {
            return;
        }
        // Later requests on a healthy connection get the idle budget.
        let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE));
    }
}

/// Which metrics bucket a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Simulate,
    Sweep,
    Jobs,
    Admin,
}

/// Routes one request: decode in the negotiated codec, execute on the
/// engine, render the outcome back in the same codec. The GET admin
/// routes (`/jobs`, `/healthz`, `/metrics`) are JSON-only — the binary
/// codec rides on POST bodies (see `docs/PROTOCOL.md`).
fn route(shared: &Shared, req: &Request, enqueued: Instant) -> (Endpoint, Response) {
    // Admission control guards only the heavy POST routes; everything
    // below this match — health, metrics, job polls — is the fast path
    // overload must never starve.
    let admit = || {
        shared
            .engine
            .admit_heavy((shared.queue.len(), shared.queue.cap))
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => {
            let outcome = match admit() {
                Err(shed) => shed,
                Ok(()) => match decode_request::<api::SimulateRequest>(req, wire::KIND_SIMULATE) {
                    Ok(r) => shared.engine.simulate(&r),
                    Err(bad) => bad,
                },
            };
            (Endpoint::Simulate, render(&outcome, req.codec))
        }
        ("POST", "/sweep") => {
            let outcome = match admit() {
                Err(shed) => shed,
                Ok(()) => match decode_request::<api::SweepRequest>(req, wire::KIND_SWEEP) {
                    Ok(r) => match check_epoch(shared, r.epoch) {
                        Err(fenced) => fenced,
                        Ok(()) => shared
                            .engine
                            .sweep(&r, enqueued, &|job| offer_shards(shared, job)),
                    },
                    Err(bad) => bad,
                },
            };
            (Endpoint::Sweep, render(&outcome, req.codec))
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            (Endpoint::Jobs, handle_job_poll(shared, path))
        }
        ("GET", "/healthz") => (
            Endpoint::Admin,
            // Besides liveness, the body carries the process-start
            // generation (so a prober can tell "restarted and cold"
            // from "same process, slow") and the highest dispatch
            // epoch seen (the fencing watermark).
            Response::json(format!(
                "{{\"status\": \"ok\", \"generation\": {}, \"epoch\": {}}}",
                shared.generation,
                shared.epoch_seen.load(Ordering::SeqCst),
            )),
        ),
        ("GET", "/metrics") => (Endpoint::Admin, handle_metrics(shared)),
        ("POST", "/shutdown") => (
            Endpoint::Admin,
            Response::json("{\"status\": \"shutting down\"}".into()),
        ),
        (_, "/simulate" | "/sweep" | "/healthz" | "/metrics" | "/shutdown") => (
            Endpoint::Admin,
            Response::error(405, &format!("method {} not allowed here", req.method)),
        ),
        _ => (
            Endpoint::Admin,
            Response::error(404, &format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// Zombie fencing at the worker boundary: a `/sweep` dispatch carrying
/// an `epoch` below the highest this worker has seen is from a deposed
/// coordinator — reject it with `409` and the current epoch in the
/// detail, *before* any simulation work runs. Equal or higher epochs
/// ratchet the watermark up (CAS-max; concurrent dispatches race
/// safely). Requests without an epoch (direct clients, pre-HA
/// coordinators) are never fenced.
fn check_epoch(shared: &Shared, epoch: Option<u64>) -> Result<(), Outcome> {
    let Some(e) = epoch else { return Ok(()) };
    let mut seen = shared.epoch_seen.load(Ordering::SeqCst);
    loop {
        if e < seen {
            shared.engine.metrics.fenced.fetch_add(1, Ordering::Relaxed);
            return Err(Outcome::Error {
                status: 409,
                detail: format!(
                    "dispatch epoch {e} is stale: this worker has seen epoch {seen}; \
                     the dispatching coordinator is fenced"
                ),
                retry_after: None,
                audit: None,
            });
        }
        match shared
            .epoch_seen
            .compare_exchange(seen, e, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => return Ok(()),
            Err(cur) => seen = cur,
        }
    }
}

/// Decodes a request body in its negotiated codec into the typed
/// request `T`. Binary bodies must be a well-formed `PTBW1` frame of
/// the endpoint's request `kind`; both codecs then build `T` from the
/// same `Value` tree, so validation downstream is codec-blind. Public
/// so the cluster coordinator decodes — and therefore rejects —
/// exactly as a worker would.
pub fn decode_request<T: serde::Deserialize>(req: &Request, kind: u8) -> Result<T, Outcome> {
    match req.codec {
        Codec::Json => {
            let text = std::str::from_utf8(&req.body)
                .map_err(|_| Outcome::bad_request("request body is not UTF-8"))?;
            serde_json::from_str(text)
                .map_err(|e| Outcome::bad_request(format!("bad request body: {e}")))
        }
        Codec::Binary => {
            let (got, value) = wire::unframe(&req.body)
                .map_err(|e| Outcome::bad_request(format!("bad PTBW1 frame: {e}")))?;
            if got != kind {
                return Err(Outcome::bad_request(format!(
                    "unexpected message kind {got:#04x} (this endpoint takes {kind:#04x})"
                )));
            }
            serde_json::from_value(&value)
                .map_err(|e| Outcome::bad_request(format!("bad request body: {e}")))
        }
    }
}

/// Renders an engine outcome in the connection's codec. One `Outcome`,
/// two byte layouts — this is the whole difference between the codecs.
/// Public so the cluster coordinator is a *third caller* of the same
/// renderer: a cluster response is byte-identical to a single-node one
/// because both are this function over the same `Outcome`.
pub fn render(outcome: &Outcome, codec: Codec) -> Response {
    match codec {
        Codec::Json => render_json(outcome),
        Codec::Binary => render_bin(outcome),
    }
}

fn render_json(outcome: &Outcome) -> Response {
    match outcome {
        Outcome::Report(memo) => {
            match memo.json_body(|report| serde_json::to_string(report).ok()) {
                Some(json) => Response::json(json.to_owned()),
                None => Response::error(500, "report serialization failed"),
            }
        }
        Outcome::Rows(rows) => match serde_json::to_string(rows) {
            Ok(json) => Response::json(json),
            Err(_) => Response::error(500, "sweep serialization failed"),
        },
        Outcome::Accepted { id, total } => {
            let mut resp = Response::json(format!("{{\"job\": {id}, \"total\": {total}}}"));
            resp.status = 202;
            resp
        }
        Outcome::Error {
            status,
            detail,
            retry_after,
            audit,
        } => {
            let mut resp = match audit {
                // A verified run diverged: serve the findings alongside
                // the error, never the untrustworthy numbers.
                Some(findings) => {
                    let detail_json = serde_json::to_string(detail).expect("string serialization");
                    let audit_json =
                        serde_json::to_string(findings).unwrap_or_else(|_| "null".into());
                    Response::json(format!(
                        "{{\"error\": {detail_json}, \"audit\": {audit_json}}}"
                    ))
                }
                None => Response::error(*status, detail),
            };
            resp.status = *status;
            resp.retry_after = *retry_after;
            resp
        }
    }
}

fn render_bin(outcome: &Outcome) -> Response {
    let (status, body, retry_after) = match outcome {
        Outcome::Report(memo) => (
            200,
            memo.ptbw_body(|report| wire::response_frame(wire::KIND_REPORT, report))
                .to_vec(),
            None,
        ),
        Outcome::Rows(rows) => (200, wire::response_frame(wire::KIND_ROWS, rows), None),
        Outcome::Accepted { id, total } => {
            let ack = Value::Object(vec![
                ("job".into(), Value::U64(*id)),
                ("total".into(), Value::U64(*total as u64)),
            ]);
            (202, wire::frame(wire::KIND_JOB_ACK, &ack), None)
        }
        Outcome::Error {
            status,
            detail,
            retry_after,
            audit,
        } => (
            *status,
            wire::error_frame(*status, detail, audit.as_ref()),
            *retry_after,
        ),
    };
    Response {
        status,
        content_type: wire::CONTENT_TYPE,
        body,
        retry_after,
        location: None,
        close: true,
    }
}

/// Offers a job's shards to idle workers: one queue item per extra
/// worker that could plausibly help. Items that don't fit (queue full)
/// are simply not offered — claiming keeps correctness independent of
/// who shows up. Returns how many items were enqueued.
fn offer_shards(shared: &Shared, job: &Arc<SweepJob>) -> usize {
    let helpers = shared.workers.saturating_sub(1).min(job.tws.len());
    let mut offered = 0;
    for _ in 0..helpers {
        if shared.queue.push(Work::Shard(Arc::clone(job))).is_err() {
            break;
        }
        offered += 1;
    }
    offered
}

fn handle_job_poll(shared: &Shared, path: &str) -> Response {
    let id_str = &path["/jobs/".len()..];
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::error(400, &format!("malformed job id {id_str:?}"));
    };
    let Some(job) = shared.engine.jobs.get(id) else {
        // Distinguish "expired by retention" from "never existed":
        // clients that held a valid id learn their results are gone for
        // good (`gone: true`) rather than suspecting a routing bug.
        // See docs/PROTOCOL.md.
        if shared.engine.jobs.is_gone(id) {
            let mut resp = Response::json(format!(
                "{{\"error\": \"job {id} expired (retention)\", \"gone\": true}}"
            ));
            resp.status = 404;
            return resp;
        }
        return Response::error(404, &format!("no job {id}"));
    };
    job_poll_response(id, &job)
}

/// Renders the `GET /jobs/{id}` body for a job. Public for the same
/// reason as [`render`]: the coordinator's job polls go through this
/// exact formatter, so cluster poll responses are byte-identical to a
/// worker's.
pub fn job_poll_response(id: u64, job: &SweepJob) -> Response {
    let completed = job.completed();
    let total = job.tws.len();
    // Always present: all-zeros when the job ran unverified, findings
    // (typed, with first-divergence coordinates) when the audit fired.
    let audit = serde_json::to_string(&job.audit()).unwrap_or_else(|_| "null".into());
    match job.state() {
        JobState::Failed { reason } => Response::json(format!(
            "{{\"id\": {id}, \"done\": false, \"failed\": true, \"error\": {}, \
             \"completed\": {completed}, \"total\": {total}, \"audit\": {audit}}}",
            serde_json::to_string(&reason).expect("string serialization"),
        )),
        JobState::Done => match job.rows().map(|r| serde_json::to_string(&r)) {
            Some(Ok(json)) => Response::json(format!(
                "{{\"id\": {id}, \"done\": true, \"failed\": false, \
                 \"completed\": {completed}, \"total\": {total}, \
                 \"audit\": {audit}, \"rows\": {json}}}"
            )),
            _ => Response::error(500, "row serialization failed"),
        },
        JobState::Running => Response::json(format!(
            "{{\"id\": {id}, \"done\": false, \"failed\": false, \
             \"completed\": {completed}, \"total\": {total}, \"audit\": {audit}}}"
        )),
    }
}

fn handle_metrics(shared: &Shared) -> Response {
    let m = &shared.engine.metrics;
    let cache = shared.engine.cache.stats();
    let (journal, journal_dir_bytes) = match &shared.engine.journal {
        Some(j) => {
            let s = j.stats();
            (
                format!(
                    "{{\"appends\": {}, \"append_errors\": {}, \"journal_recovered\": {}, \
                     \"journal_discarded\": {}, \"reloaded_jobs\": {}, \"resumed_jobs\": {}, \
                     \"replayed_shards\": {}, \"gc_removed\": {}}}",
                    s.appends,
                    s.append_errors,
                    s.recovered,
                    s.discarded,
                    s.reloaded_jobs,
                    s.resumed_jobs,
                    s.replayed_shards,
                    s.gc_removed,
                ),
                s.dir_bytes,
            )
        }
        None => ("null".into(), 0),
    };
    Response::json(format!(
        "{{\"accepted\": {}, \"rejected_queue_full\": {}, \"bad_requests\": {}, \
         \"panics_contained\": {}, \"deadline_expired\": {}, \
         \"audit_mismatches\": {}, \"acc_saturated\": {}, \
         \"codec_json\": {}, \"codec_bin\": {}, \
         \"keepalive_reused\": {}, \"pipelined\": {}, \
         \"report_memo_hits\": {}, \"verify\": \"{}\", \
         \"queue_depth\": {}, \"workers\": {}, \
         \"admission_shed\": {}, \"jobs_expired\": {}, \
         \"fenced\": {}, \"epoch_seen\": {}, \"generation\": {}, \
         \"cache_mem_bytes\": {}, \"cache_evictions\": {}, \
         \"disk_cache_bytes\": {}, \"journal_dir_bytes\": {journal_dir_bytes}, \
         \"cache\": {{\"mem_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"coalesced\": {}}}, \
         \"journal\": {journal}, \
         \"endpoints\": {{\"simulate\": {}, \"sweep\": {}, \"jobs\": {}, \"admin\": {}}}}}",
        m.accepted.load(Ordering::Relaxed),
        m.rejected_queue_full.load(Ordering::Relaxed),
        m.bad_requests.load(Ordering::Relaxed),
        m.panics_contained.load(Ordering::Relaxed),
        m.deadline_expired.load(Ordering::Relaxed),
        m.audit_mismatches.load(Ordering::Relaxed),
        m.acc_saturated.load(Ordering::Relaxed),
        m.codec_json.load(Ordering::Relaxed),
        m.codec_bin.load(Ordering::Relaxed),
        m.keepalive_reused.load(Ordering::Relaxed),
        m.pipelined.load(Ordering::Relaxed),
        m.report_memo_hits.load(Ordering::Relaxed),
        shared.engine.verify.label(),
        shared.queue.len(),
        shared.workers,
        m.admission_shed.load(Ordering::Relaxed),
        m.jobs_expired.load(Ordering::Relaxed),
        m.fenced.load(Ordering::Relaxed),
        shared.epoch_seen.load(Ordering::SeqCst),
        shared.generation,
        cache.mem_bytes,
        cache.evictions + cache.disk_evictions,
        cache.disk_bytes,
        cache.mem_hits,
        cache.disk_hits,
        cache.misses,
        cache.coalesced,
        m.simulate.to_json(),
        m.sweep.to_json(),
        m.jobs.to_json(),
        m.admin.to_json(),
    ))
}

//! The daemon: a bounded job queue, a fixed worker pool, and the HTTP
//! route handlers.
//!
//! ## Request lifecycle
//!
//! The acceptor thread owns the listening socket. Each accepted
//! connection becomes a `Work::Conn` item on the bounded queue (or is
//! answered `503` on the spot when the queue is full — backpressure is
//! explicit, never an unbounded buffer). A pool worker dequeues the
//! connection, reads and routes the request, runs the simulation on its
//! own thread, and writes the response. One request per connection.
//!
//! ## Sharded sweeps without deadlock
//!
//! `POST /sweep` fans its TW points out as `Work::Shard` items that
//! *other* workers can pick up, but the handling worker always claims
//! and runs shards itself too ([`SweepJob::run_shards`]). Shards are
//! claimed atomically, so the split adapts to whoever is free: on a
//! fully busy pool the handler simply runs the whole sweep alone, which
//! means a synchronous sweep can never deadlock waiting for workers
//! that are themselves waiting. Results merge by original index,
//! matching `ptb_bench::sweep_summary_cached` exactly.
//!
//! ## Shared cache
//!
//! All workers share one [`ActivityCache`]: concurrent requests for the
//! same `(profile, neurons, timesteps, seed)` layer activity coalesce
//! into a single in-flight generation (see `ptb_bench::cache`), so a
//! burst of identical jobs pays the expensive step once.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ptb_bench::{run_network_cached, ActivityCache, CacheMode, RunOptions};

use crate::api;
use crate::http::{read_request, Request, RequestError, Response, READ_TIMEOUT};
use crate::jobs::{JobRegistry, SweepJob};
use crate::metrics::Metrics;

/// Server configuration; see [`ServerConfig::from_env`] for the
/// environment knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 binds an ephemeral
    /// port (read it back from [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests and sweep shards.
    pub workers: usize,
    /// Maximum queued work items before new connections get `503`.
    pub queue_cap: usize,
    /// Cache mode for the shared [`ActivityCache`].
    pub cache: CacheMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            queue_cap: 64,
            cache: CacheMode::Mem,
        }
    }
}

impl ServerConfig {
    /// Reads `PTB_ADDR` (bind address, default `127.0.0.1:7878`),
    /// `PTB_WORKERS` (pool size, default `max(2, cores)`),
    /// `PTB_QUEUE_CAP` (queue bound, default 64), and `PTB_CACHE`
    /// (shared cache mode, default `mem`).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(addr) = std::env::var("PTB_ADDR") {
            cfg.addr = addr;
        }
        if let Some(n) = std::env::var("PTB_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.workers = n.max(1);
        }
        if let Some(n) = std::env::var("PTB_QUEUE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.queue_cap = n.max(1);
        }
        cfg.cache = CacheMode::from_env();
        cfg
    }
}

/// A unit of work for the pool.
enum Work {
    /// An accepted connection with a request to read.
    Conn(TcpStream),
    /// A sweep with unclaimed shards; the worker claims until dry.
    Shard(Arc<SweepJob>),
}

/// The bounded MPMC work queue.
struct Queue {
    items: Mutex<(VecDeque<Work>, bool)>, // (queue, closed)
    cv: Condvar,
    cap: usize,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            items: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless full or closed; on rejection the item is handed
    /// back so the caller can respond to (or drop) it.
    fn push(&self, work: Work) -> Result<(), Work> {
        let mut guard = self.items.lock().expect("work queue lock");
        if guard.1 || guard.0.len() >= self.cap {
            return Err(work);
        }
        guard.0.push_back(work);
        drop(guard);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues, blocking. `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Work> {
        let mut guard = self.items.lock().expect("work queue lock");
        loop {
            if let Some(work) = guard.0.pop_front() {
                return Some(work);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard).expect("work queue lock (wait)");
        }
    }

    /// Closes the queue: queued work still drains, new pushes fail, and
    /// idle workers wake to exit.
    fn close(&self) {
        self.items.lock().expect("work queue lock").1 = true;
        self.cv.notify_all();
    }

    fn len(&self) -> usize {
        self.items.lock().expect("work queue lock").0.len()
    }
}

/// State shared by the acceptor, every worker, and the handlers.
struct Shared {
    cache: ActivityCache,
    metrics: Metrics,
    jobs: JobRegistry,
    queue: Queue,
    workers: usize,
    shutdown: AtomicBool,
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::join`] after a shutdown request, or send `POST /shutdown`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the acceptor and worker threads.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ActivityCache::new(cfg.cache),
            metrics: Metrics::default(),
            jobs: JobRegistry::default(),
            queue: Queue::new(cfg.queue_cap),
            workers: cfg.workers,
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::with_capacity(cfg.workers + 1);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ptb-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared))
                .expect("spawn acceptor"),
        );
        for i in 0..cfg.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ptb-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .expect("spawn worker"),
            );
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from within the process (equivalent to
    /// `POST /shutdown`).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for every thread to exit (after a shutdown request).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Flags shutdown and unblocks the acceptor with a wake-up connection.
fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // The acceptor blocks in accept(); a throwaway connection wakes it
    // so it can observe the flag. Errors don't matter: if the connect
    // fails the listener is already gone.
    let _ = TcpStream::connect(addr);
    shared.queue.close();
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
        if let Err(Work::Conn(mut rejected)) = shared.queue.push(Work::Conn(stream)) {
            shared
                .metrics
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            Response::error(503, "work queue is full, try again later").write_to(&mut rejected);
        }
    }
    shared.queue.close();
}

fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.queue.pop() {
        match work {
            Work::Conn(mut stream) => handle_conn(shared, &mut stream),
            Work::Shard(job) => {
                job.run_shards(&shared.cache);
            }
        }
    }
}

fn handle_conn(shared: &Shared, stream: &mut TcpStream) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_request_error(stream, &e);
            return;
        }
    };
    let started = Instant::now();
    let (endpoint, response) = route(shared, &request);
    let metrics = match endpoint {
        Endpoint::Simulate => &shared.metrics.simulate,
        Endpoint::Sweep => &shared.metrics.sweep,
        Endpoint::Jobs => &shared.metrics.jobs,
        Endpoint::Admin => &shared.metrics.admin,
    };
    metrics.record(response.status, started.elapsed());
    response.write_to(stream);
    // /shutdown responds first, then stops the world.
    if endpoint == Endpoint::Admin && request.path == "/shutdown" && response.status == 200 {
        if let Ok(addr) = stream.local_addr() {
            trigger_shutdown(shared, addr);
        }
    }
}

fn respond_request_error(stream: &mut TcpStream, e: &RequestError) {
    Response::error(e.status(), &e.detail()).write_to(stream);
}

/// Which metrics bucket a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Simulate,
    Sweep,
    Jobs,
    Admin,
}

fn route(shared: &Shared, req: &Request) -> (Endpoint, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/simulate") => (Endpoint::Simulate, handle_simulate(shared, &req.body)),
        ("POST", "/sweep") => (Endpoint::Sweep, handle_sweep(shared, &req.body)),
        ("GET", path) if path.starts_with("/jobs/") => {
            (Endpoint::Jobs, handle_job_poll(shared, path))
        }
        ("GET", "/healthz") => (
            Endpoint::Admin,
            Response::json("{\"status\": \"ok\"}".into()),
        ),
        ("GET", "/metrics") => (Endpoint::Admin, handle_metrics(shared)),
        ("POST", "/shutdown") => (
            Endpoint::Admin,
            Response::json("{\"status\": \"shutting down\"}".into()),
        ),
        (_, "/simulate" | "/sweep" | "/healthz" | "/metrics" | "/shutdown") => (
            Endpoint::Admin,
            Response::error(405, &format!("method {} not allowed here", req.method)),
        ),
        _ => (
            Endpoint::Admin,
            Response::error(404, &format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// Builds the per-request run options: quick or full fidelity, caller's
/// seed, serial position scan (parallelism comes from the pool, not
/// from within a layer).
fn run_options(quick: Option<bool>, seed: Option<u64>) -> RunOptions {
    let mut opts = if quick.unwrap_or(false) {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(seed) = seed {
        opts.seed = seed;
    }
    opts
}

fn handle_simulate(shared: &Shared, body: &[u8]) -> Response {
    let req: api::SimulateRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let spec = match api::resolve_network(&req.network) {
        Ok(s) => s,
        Err(e) => return Response::error(422, &e.0),
    };
    if let Err(e) = api::validate_tw(req.tw) {
        return Response::error(422, &e.0);
    }
    let opts = run_options(req.quick, req.seed);
    let report = run_network_cached(&spec, req.policy.0, req.tw, &opts, &shared.cache);
    match serde_json::to_string(&report) {
        Ok(json) => Response::json(json),
        Err(_) => Response::error(500, "report serialization failed"),
    }
}

fn handle_sweep(shared: &Shared, body: &[u8]) -> Response {
    let req: api::SweepRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let spec = match api::resolve_network(&req.network) {
        Ok(s) => s,
        Err(e) => return Response::error(422, &e.0),
    };
    if let Err(e) = api::validate_tws(&req.tws) {
        return Response::error(422, &e.0);
    }
    let opts = run_options(req.quick, req.seed);
    let job = Arc::new(SweepJob::new(spec, req.policy.0, req.tws.clone(), opts));

    // Offer shards to idle workers: one queue item per extra worker
    // that could plausibly help. Items that don't fit (queue full) are
    // simply not offered — claiming keeps correctness independent of
    // who shows up.
    let helpers = shared.workers.saturating_sub(1).min(job.tws.len());
    let mut offered = 0;
    for _ in 0..helpers {
        if shared.queue.push(Work::Shard(Arc::clone(&job))).is_err() {
            break;
        }
        offered += 1;
    }

    if req.background.unwrap_or(false) {
        let Some(id) = shared.jobs.register(Arc::clone(&job)) else {
            return Response::error(503, "job registry is full");
        };
        // Guarantee progress even if no shard item could be offered
        // (full queue, or a single-worker pool): run the shards here
        // before answering, trading response latency for liveness.
        if offered == 0 {
            job.run_shards(&shared.cache);
        }
        let mut resp = Response::json(format!("{{\"job\": {id}, \"total\": {}}}", job.tws.len()));
        resp.status = 202;
        return resp;
    }

    // Synchronous: this handler claims shards alongside the pool, then
    // waits out any shard still running on another worker.
    job.run_shards(&shared.cache);
    job.wait();
    let rows = job.rows().expect("job complete after wait");
    match serde_json::to_string(&rows) {
        Ok(json) => Response::json(json),
        Err(_) => Response::error(500, "sweep serialization failed"),
    }
}

fn handle_job_poll(shared: &Shared, path: &str) -> Response {
    let id_str = &path["/jobs/".len()..];
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::error(400, &format!("malformed job id {id_str:?}"));
    };
    let Some(job) = shared.jobs.get(id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    let completed = job.completed();
    let total = job.tws.len();
    match job.rows() {
        Some(rows) => match serde_json::to_string(&rows) {
            Ok(json) => Response::json(format!(
                "{{\"id\": {id}, \"done\": true, \"completed\": {completed}, \
                 \"total\": {total}, \"rows\": {json}}}"
            )),
            Err(_) => Response::error(500, "row serialization failed"),
        },
        None => Response::json(format!(
            "{{\"id\": {id}, \"done\": false, \"completed\": {completed}, \"total\": {total}}}"
        )),
    }
}

fn handle_metrics(shared: &Shared) -> Response {
    let m = &shared.metrics;
    let cache = shared.cache.stats();
    Response::json(format!(
        "{{\"accepted\": {}, \"rejected_queue_full\": {}, \"bad_requests\": {}, \
         \"queue_depth\": {}, \"workers\": {}, \
         \"cache\": {{\"mem_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"coalesced\": {}}}, \
         \"endpoints\": {{\"simulate\": {}, \"sweep\": {}, \"jobs\": {}, \"admin\": {}}}}}",
        m.accepted.load(Ordering::Relaxed),
        m.rejected_queue_full.load(Ordering::Relaxed),
        m.bad_requests.load(Ordering::Relaxed),
        shared.queue.len(),
        shared.workers,
        cache.mem_hits,
        cache.disk_hits,
        cache.misses,
        cache.coalesced,
        m.simulate.to_json(),
        m.sweep.to_json(),
        m.jobs.to_json(),
        m.admin.to_json(),
    ))
}

/// Parses a JSON request body, mapping failures to 400 with detail.
fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad request body: {e}")))
}

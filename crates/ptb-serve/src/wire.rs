//! The `PTBW1` binary wire codec: compact framed request/report
//! messages, the second codec next to JSON.
//!
//! A wire message is one *frame*:
//!
//! ```text
//! frame   := magic "PTBW1" | version u8 (0x01) | len u32 LE | fnv1a64(payload) u64 LE | payload
//! payload := kind u8 | value
//! ```
//!
//! — the job journal's `[len][fnv1a-64][payload]` framing discipline
//! (see [`crate::journal`]) with a 6-byte magic+version preamble so a
//! frame is self-identifying on the wire. The checksum covers the whole
//! payload including the kind byte, so any single-bit corruption
//! anywhere in a frame is detected (magic/version/len flips fail their
//! own checks; payload flips fail the checksum — unit-tested
//! exhaustively bit by bit).
//!
//! `value` is a tagged binary encoding of the same [`serde::Value`]
//! tree the JSON codec renders as text, which is what makes the two
//! codecs interchangeable: both the JSON body `{"network": ...}` and a
//! binary frame decode to the *same* `Value`, feed the same validated
//! request types ([`crate::api`]), and a response is one `Value`
//! encoded by either codec. Floats travel as raw IEEE-754 bits
//! (`f64::to_bits`, little-endian), so binary round-trips are bit-exact
//! by construction rather than by careful float formatting.
//!
//! ```text
//! value  := 0x00                                  null
//!         | 0x01 | 0x02                           false | true
//!         | 0x03 u64-LE                           unsigned integer
//!         | 0x04 i64-LE                           signed integer
//!         | 0x05 u128-LE                          wide unsigned (tile tags)
//!         | 0x06 f64-bits-LE                      float
//!         | 0x07 len u32-LE bytes                 UTF-8 string
//!         | 0x08 count u32-LE value*              array
//!         | 0x09 count u32-LE (key value)*        object; key := len u32-LE bytes
//! ```
//!
//! Message kinds: requests `0x01` (simulate) and `0x02` (sweep);
//! responses `0x81` (network report), `0x82` (sweep rows), `0x83`
//! (background-job ack), and `0x7F` (error). The full spec — field
//! tables, transport negotiation, keep-alive semantics, versioning —
//! lives in `docs/PROTOCOL.md`; the worked example there is pinned
//! byte-for-byte by this module's tests.
//!
//! ## Robustness
//!
//! Decoding is total: any byte sequence yields a value or a typed
//! [`WireError`], never a panic, unbounded recursion, or attacker-
//! controlled allocation (declared lengths are checked against the
//! bytes actually present before anything is allocated; nesting is
//! capped at [`MAX_DEPTH`]). Fuzzed alongside the HTTP parser by
//! `tests/codec_equivalence.rs`.
//!
//! ## Encoding one request by hand
//!
//! ```
//! use ptb_serve::wire;
//! use serde::Value;
//!
//! // POST /simulate {"network": "DVS-Gesture", "policy": "PTB", "tw": 8}
//! let request = Value::Object(vec![
//!     ("network".into(), Value::Str("DVS-Gesture".into())),
//!     ("policy".into(), Value::Str("PTB".into())),
//!     ("tw".into(), Value::U64(8)),
//! ]);
//! let frame = wire::frame(wire::KIND_SIMULATE, &request);
//!
//! // The frame opens with the magic, the version byte, and the
//! // payload length; the payload opens with the kind byte and the
//! // object tag.
//! assert_eq!(&frame[..5], b"PTBW1");
//! assert_eq!(frame[5], wire::VERSION);
//! let len = u32::from_le_bytes(frame[6..10].try_into().unwrap());
//! assert_eq!(frame.len(), wire::FRAME_HEADER_LEN + len as usize);
//! assert_eq!(frame[wire::FRAME_HEADER_LEN], wire::KIND_SIMULATE);
//! assert_eq!(frame[wire::FRAME_HEADER_LEN + 1], 0x09); // object tag
//!
//! // And it round-trips.
//! let (kind, value) = wire::unframe(&frame).unwrap();
//! assert_eq!((kind, &value), (wire::KIND_SIMULATE, &request));
//! ```

use ptb_bench::cache::fnv1a;
use serde::Value;

/// Frame magic: the first five bytes of every binary wire message.
pub const MAGIC: &[u8; 5] = b"PTBW1";

/// The `Content-Type` that negotiates this codec over HTTP. A `POST`
/// with this media type carries a request frame and is answered with a
/// response frame of the same type.
pub const CONTENT_TYPE: &str = "application/x-ptbw";

/// Wire-format version. Bump on any incompatible change to the frame
/// layout, the value encoding, or a message's field table; decoders
/// reject other versions with [`WireError::BadVersion`].
pub const VERSION: u8 = 0x01;

/// Bytes before the payload: magic (5) + version (1) + len (4) +
/// checksum (8).
pub const FRAME_HEADER_LEN: usize = 5 + 1 + 4 + 8;

/// Maximum accepted payload length. Matches the HTTP body cap
/// ([`crate::http::MAX_BODY_BYTES`]) so a frame never admits what the
/// HTTP layer would have refused; responses (reports) fit comfortably.
pub const MAX_PAYLOAD_BYTES: usize = crate::http::MAX_BODY_BYTES;

/// Maximum value-tree nesting depth a decoder will follow. Deeper
/// frames are [`WireError::TooDeep`] — legitimate messages nest a
/// handful of levels; a deeply nested frame is an attack on the stack.
pub const MAX_DEPTH: usize = 64;

/// Request kind: a `POST /simulate` body ([`crate::api::SimulateRequest`]).
pub const KIND_SIMULATE: u8 = 0x01;
/// Request kind: a `POST /sweep` body ([`crate::api::SweepRequest`]).
///
/// Coordinator-built shard dispatches additionally carry an `"epoch"`
/// key (the dispatching coordinator's leadership epoch); a worker that
/// has seen a higher epoch answers `409` instead of sweeping — the
/// zombie-fencing handshake of `docs/PROTOCOL.md` §7. Frames without
/// the key (direct clients) are never fenced.
pub const KIND_SWEEP: u8 = 0x02;
/// Response kind: a `NetworkReport`.
pub const KIND_REPORT: u8 = 0x81;
/// Response kind: an array of `SweepRow`s.
pub const KIND_ROWS: u8 = 0x82;
/// Response kind: a background-job ack `{"job": id, "total": n}`.
pub const KIND_JOB_ACK: u8 = 0x83;
/// Response kind: an error `{"status": u16, "error": str[, "audit"]}`.
pub const KIND_ERROR: u8 = 0x7F;

/// Why a frame or value failed to decode. Total over arbitrary bytes;
/// each maps to one human-readable detail for the error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first five bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported [`VERSION`] byte.
    BadVersion(u8),
    /// Fewer bytes than the header or the declared payload length.
    Truncated,
    /// Declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    TooLarge(usize),
    /// FNV-1a checksum mismatch: the payload is corrupt.
    BadChecksum,
    /// Bytes past the end of the decoded payload.
    TrailingBytes,
    /// Unknown value tag byte.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Value nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// The message kind byte was not one this decoder accepts.
    BadKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "frame does not start with the PTBW1 magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v:#04x}"),
            WireError::Truncated => write!(f, "frame is truncated"),
            WireError::TooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds {MAX_PAYLOAD_BYTES}")
            }
            WireError::BadChecksum => write!(f, "payload checksum mismatch"),
            WireError::TrailingBytes => write!(f, "trailing bytes after the encoded value"),
            WireError::BadTag(t) => write!(f, "unknown value tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::TooDeep => write!(f, "value nesting exceeds {MAX_DEPTH} levels"),
            WireError::BadKind(k) => write!(f, "unexpected message kind {k:#04x}"),
        }
    }
}

/// Encodes `value` into the tagged binary form, appending to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0x00),
        Value::Bool(false) => out.push(0x01),
        Value::Bool(true) => out.push(0x02),
        Value::U64(n) => {
            out.push(0x03);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::I64(n) => {
            out.push(0x04);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::U128(n) => {
            out.push(0x05);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(0x06);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x07);
            push_bytes(s.as_bytes(), out);
        }
        Value::Array(items) => {
            out.push(0x08);
            out.extend_from_slice(&count_u32(items.len()).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(0x09);
            out.extend_from_slice(&count_u32(fields.len()).to_le_bytes());
            for (key, item) in fields {
                push_bytes(key.as_bytes(), out);
                encode_value(item, out);
            }
        }
    }
}

/// `len u32 LE` + raw bytes.
fn push_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&count_u32(bytes.len()).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Element/byte counts as u32; lengths beyond u32 cannot occur under
/// [`MAX_PAYLOAD_BYTES`] but saturate defensively rather than truncate.
fn count_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Decodes one value occupying the whole of `bytes`.
/// [`WireError::TrailingBytes`] if anything follows it.
pub fn decode_value(bytes: &[u8]) -> Result<Value, WireError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let value = cursor.value(0)?;
    if cursor.pos != bytes.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

/// Bounds-checked reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32_le(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32_le()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth >= MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        let tag = self.take(1)?[0];
        Ok(match tag {
            0x00 => Value::Null,
            0x01 => Value::Bool(false),
            0x02 => Value::Bool(true),
            0x03 => Value::U64(u64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            0x04 => Value::I64(i64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            0x05 => Value::U128(u128::from_le_bytes(self.take(16)?.try_into().expect("16"))),
            0x06 => Value::F64(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8"),
            ))),
            0x07 => Value::Str(self.string()?),
            0x08 => {
                let count = self.u32_le()? as usize;
                // Never preallocate from an attacker-declared count: the
                // smallest element is one byte, so anything beyond the
                // remaining bytes is already a lie.
                if count > self.bytes.len() - self.pos {
                    return Err(WireError::Truncated);
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Value::Array(items)
            }
            0x09 => {
                let count = self.u32_le()? as usize;
                if count > self.bytes.len() - self.pos {
                    return Err(WireError::Truncated);
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.string()?;
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                }
                Value::Object(fields)
            }
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Builds one complete frame: `kind` + `value` as the checksummed
/// payload behind the magic/version/len header.
pub fn frame(kind: u8, value: &Value) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.push(kind);
    encode_value(value, &mut payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&count_u32(payload.len()).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses one complete frame into its `(kind, value)` payload,
/// verifying magic, version, length, and checksum. Total: any byte
/// sequence yields `Ok` or a typed error, never a panic.
pub fn unframe(bytes: &[u8]) -> Result<(u8, Value), WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        // Distinguish "not even the magic" for better diagnostics.
        if bytes.len() >= 5 && &bytes[..5] != MAGIC {
            return Err(WireError::BadMagic);
        }
        return Err(WireError::Truncated);
    }
    if &bytes[..5] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[5] != VERSION {
        return Err(WireError::BadVersion(bytes[5]));
    }
    let len = u32::from_le_bytes(bytes[6..10].try_into().expect("4")) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let sum = u64::from_le_bytes(bytes[10..18].try_into().expect("8"));
    let rest = &bytes[FRAME_HEADER_LEN..];
    if rest.len() < len {
        return Err(WireError::Truncated);
    }
    if rest.len() > len {
        return Err(WireError::TrailingBytes);
    }
    let payload = &rest[..len];
    if fnv1a(payload) != sum {
        return Err(WireError::BadChecksum);
    }
    let (kind, value_bytes) = payload.split_first().ok_or(WireError::Truncated)?;
    let value = decode_value(value_bytes)?;
    Ok((*kind, value))
}

/// Encodes a typed response frame from anything `Serialize`.
pub fn response_frame<T: serde::Serialize + ?Sized>(kind: u8, value: &T) -> Vec<u8> {
    frame(kind, &value.to_value())
}

/// Builds a `KIND_ERROR` frame: `status` + `detail`, plus the audit
/// findings when a verified run diverged (mirrors the JSON error body).
pub fn error_frame(status: u16, detail: &str, audit: Option<&Value>) -> Vec<u8> {
    let mut fields = vec![
        ("status".to_string(), Value::U64(u64::from(status))),
        ("error".to_string(), Value::Str(detail.to_string())),
    ];
    if let Some(audit) = audit {
        fields.push(("audit".to_string(), audit.clone()));
    }
    frame(KIND_ERROR, &Value::Object(fields))
}

/// A decoded `KIND_ERROR` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// The HTTP-equivalent status code.
    pub status: u16,
    /// Human-readable detail.
    pub detail: String,
    /// Audit findings, when the error carries them.
    pub audit: Option<Value>,
}

/// Interprets an already-unframed `(kind, value)` as an error payload.
pub fn decode_error(kind: u8, value: &Value) -> Result<ErrorFrame, WireError> {
    if kind != KIND_ERROR {
        return Err(WireError::BadKind(kind));
    }
    let status = value
        .get("status")
        .and_then(Value::as_u64)
        .and_then(|n| u16::try_from(n).ok())
        .ok_or(WireError::BadTag(0x09))?;
    let detail = value
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    Ok(ErrorFrame {
        status,
        detail,
        audit: value.get("audit").cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let mut bytes = Vec::new();
        encode_value(v, &mut bytes);
        assert_eq!(&decode_value(&bytes).unwrap(), v, "{v:?}");
    }

    #[test]
    fn every_value_variant_roundtrips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::U64(0));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::I64(-42));
        roundtrip(&Value::U128(u128::MAX));
        roundtrip(&Value::F64(0.1 + 0.2)); // not representable in short decimal
        roundtrip(&Value::F64(f64::MIN_POSITIVE));
        roundtrip(&Value::F64(-0.0));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Str("espaço — ünïcode ☂".into()));
        roundtrip(&Value::Array(vec![]));
        roundtrip(&Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Null, Value::U64(7)])),
            (
                "nested".into(),
                Value::Object(vec![("x".into(), Value::F64(1.5))]),
            ),
        ]));
    }

    #[test]
    fn f64_bits_survive_exactly_including_nan_payloads() {
        // JSON cannot carry NaN; the binary codec carries its exact bits.
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut bytes = Vec::new();
        encode_value(&Value::F64(weird), &mut bytes);
        match decode_value(&bytes).unwrap() {
            Value::F64(x) => assert_eq!(x.to_bits(), weird.to_bits()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_every_single_bit_flip() {
        let value = Value::Object(vec![
            ("network".into(), Value::Str("DVS-Gesture".into())),
            ("tw".into(), Value::U64(8)),
        ]);
        let bytes = frame(KIND_SIMULATE, &value);
        assert_eq!(unframe(&bytes).unwrap(), (KIND_SIMULATE, value));

        // No single-bit corruption anywhere in the frame may decode: the
        // header fields fail their own checks, payload flips fail the
        // FNV-1a checksum.
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                unframe(&flipped).is_err(),
                "bit flip at {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncations_and_garbage_are_typed_errors() {
        let bytes = frame(KIND_ROWS, &Value::Array(vec![Value::F64(2.5)]));
        for cut in 0..bytes.len() {
            assert!(unframe(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert_eq!(unframe(b"").unwrap_err(), WireError::Truncated);
        assert_eq!(
            unframe(b"HTTP/1.1 200 OK\r\n").unwrap_err(),
            WireError::BadMagic
        );
        let mut wrong_version = bytes.clone();
        wrong_version[5] = 0x02;
        assert_eq!(
            unframe(&wrong_version).unwrap_err(),
            WireError::BadVersion(0x02)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(unframe(&trailing).unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn hostile_lengths_do_not_allocate_or_panic() {
        // An array claiming u32::MAX elements with no bytes behind it.
        let mut payload = vec![0x08];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_value(&payload).unwrap_err(), WireError::Truncated);

        // A string claiming more bytes than exist.
        let mut payload = vec![0x07];
        payload.extend_from_slice(&1_000_000u32.to_le_bytes());
        payload.push(b'x');
        assert_eq!(decode_value(&payload).unwrap_err(), WireError::Truncated);

        // A declared frame length beyond the cap.
        let mut huge = Vec::new();
        huge.extend_from_slice(MAGIC);
        huge.push(VERSION);
        huge.extend_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
        huge.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            unframe(&huge).unwrap_err(),
            WireError::TooLarge(_)
        ));
    }

    #[test]
    fn nesting_beyond_the_depth_cap_is_rejected() {
        // MAX_DEPTH+1 nested single-element arrays around a null.
        let mut bytes = Vec::new();
        for _ in 0..=MAX_DEPTH {
            bytes.push(0x08);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0x00);
        assert_eq!(decode_value(&bytes).unwrap_err(), WireError::TooDeep);

        // One level under the cap decodes fine.
        let mut ok = Vec::new();
        for _ in 0..MAX_DEPTH - 1 {
            ok.push(0x08);
            ok.extend_from_slice(&1u32.to_le_bytes());
        }
        ok.push(0x00);
        assert!(decode_value(&ok).is_ok());
    }

    #[test]
    fn error_frames_roundtrip_with_and_without_audit() {
        let bytes = error_frame(422, "tw must be in 1..=64", None);
        let (kind, value) = unframe(&bytes).unwrap();
        let err = decode_error(kind, &value).unwrap();
        assert_eq!(
            (err.status, err.detail.as_str()),
            (422, "tw must be in 1..=64")
        );
        assert!(err.audit.is_none());

        let audit = Value::Object(vec![("mismatches".into(), Value::U64(3))]);
        let bytes = error_frame(500, "audit failed", Some(&audit));
        let (kind, value) = unframe(&bytes).unwrap();
        let err = decode_error(kind, &value).unwrap();
        assert_eq!(err.status, 500);
        assert_eq!(err.audit, Some(audit));

        assert!(decode_error(KIND_REPORT, &Value::Null).is_err());
    }

    /// Pins the worked example in `docs/PROTOCOL.md` byte-for-byte: if
    /// this test fails, either the encoder or the spec is wrong — fix
    /// whichever diverged, never both silently.
    #[test]
    fn protocol_md_worked_example_matches_the_encoder_exactly() {
        let request = Value::Object(vec![
            ("network".into(), Value::Str("DVS-Gesture".into())),
            ("policy".into(), Value::Str("PTB+StSAP".into())),
            ("tw".into(), Value::U64(8)),
            ("quick".into(), Value::Bool(true)),
            ("seed".into(), Value::U64(42)),
        ]);
        let bytes = frame(KIND_SIMULATE, &request);
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        // The exact hex string printed in docs/PROTOCOL.md §"A worked
        // example".
        let expected = concat!(
            "5054425731",       // "PTBW1"
            "01",               // version 1
            "63000000",         // payload len = 99
            "004a501d312965a0", // fnv1a-64 of the payload, LE
            "01",               // kind: simulate request
            "09",
            "05000000", // object, 5 fields
            "07000000",
            "6e6574776f726b", // key "network"
            "07",
            "0b000000",
            "4456532d47657374757265", // str "DVS-Gesture"
            "06000000",
            "706f6c696379", // key "policy"
            "07",
            "09000000",
            "5054422b5374534150", // str "PTB+StSAP"
            "02000000",
            "7477", // key "tw"
            "03",
            "0800000000000000", // u64 8
            "05000000",
            "717569636b", // key "quick"
            "02",         // true
            "04000000",
            "73656564", // key "seed"
            "03",
            "2a00000000000000", // u64 42
        );
        assert_eq!(hex, expected);
        // And the payload length field really is the payload's length.
        assert_eq!(bytes.len() - FRAME_HEADER_LEN, 99);
    }
}

//! # ptb-serve
//!
//! A long-running simulation service for the PTB reproduction: an
//! HTTP/1.1 daemon (plain `std::net`, no external dependencies) that
//! keeps one [`ptb_bench::ActivityCache`] warm across requests and
//! shares it over a fixed worker pool, so interactive exploration of
//! the design space — one policy/TW point per request, or a sharded TW
//! sweep — pays for activity generation once instead of once per
//! invocation.
//!
//! ## API
//!
//! | Route | Body | Response |
//! |---|---|---|
//! | `POST /simulate` | `{"network", "policy", "tw", "quick"?, "seed"?, "deadline_ms"?, "verify"?}` | `NetworkReport` JSON |
//! | `POST /sweep` | `{"network", "policy", "tws", "quick"?, "seed"?, "background"?, "deadline_ms"?, "verify"?}` | `[SweepRow]`, or `202 {"job": id}` |
//! | `GET /jobs/{id}` | — | job status + `audit` summary + rows when done, or `"failed"` + reason |
//! | `GET /metrics` | — | counters, latency percentiles, cache + journal + audit stats |
//! | `GET /healthz` | — | `{"status": "ok"}` |
//! | `POST /shutdown` | — | responds, then drains and stops the daemon |
//!
//! `network` is a built-in name (`DVS-Gesture`, `CIFAR10-DVS`,
//! `AlexNet`, `CIFAR10`) or a full inline `NetworkSpec`; `policy` is a
//! label (`PTB+StSAP`) or serde form (`{"Ptb": {"stsap": true}}`).
//! Responses are bit-identical to the in-process harness:
//! `/simulate` to `ptb_bench::run_network_cached`, `/sweep` to
//! `ptb_bench::sweep_summary_cached` (pinned by
//! `tests/service_roundtrip.rs`).
//!
//! ## Wire codecs and connections
//!
//! `POST /simulate` and `POST /sweep` speak two codecs over one
//! engine: JSON (the default) and the compact binary `PTBW1` frame
//! format ([`wire`]), negotiated per request with
//! `Content-Type: application/x-ptbw`. Responses are bit-identical
//! across codecs by construction — both render the same
//! [`engine::Outcome`] — and `tests/codec_equivalence.rs`
//! property-tests that. Connections are kept alive by default
//! (HTTP/1.1 semantics) with request pipelining and idle timeouts;
//! `/metrics` counts reuse (`keepalive_reused`, `pipelined`) and
//! per-codec traffic (`codec_json`, `codec_bin`). The full wire
//! contract — frame layout, field tables, keep-alive and versioning
//! rules — is written down in `docs/PROTOCOL.md`.
//!
//! Background jobs are crash-safe: each is append-journaled under
//! `PTB_JOB_DIR` (checksummed records; replayed on boot so unfinished
//! jobs resume under their original ids without recomputing journaled
//! shards). Worker panics are contained (`Failed` job state, not a
//! dead daemon), deadlines (`PTB_DEADLINE_MS` or per-request
//! `deadline_ms`) shed expired work with `503` + `Retry-After`, and
//! the [`client`] retries with decorrelated-jitter backoff.
//!
//! Runs can be *audited*: `"verify": "sample"|"full"` on a request (or
//! `PTB_VERIFY` as the daemon default) re-derives structural invariants
//! and replays sampled neurons through the serial reference model
//! (`ptb_accel::audit`). A divergence fails the response or job with
//! typed findings instead of serving wrong numbers, journal-replayed
//! rows are recomputed before being trusted, and `/metrics` exposes the
//! totals (`audit_mismatches`, `acc_saturated`).
//!
//! See `docs/ARCHITECTURE.md` ("The simulation service", "Failure
//! modes and recovery") for the request lifecycle, sweep sharding, and
//! journal design, and `EXPERIMENTS.md` for the `PTB_ADDR` /
//! `PTB_WORKERS` / `PTB_QUEUE_CAP` / `PTB_JOB_DIR` / `PTB_DEADLINE_MS`
//! / `PTB_FAILPOINTS` knobs and the `ptb-load` load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod engine;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod metrics;
pub mod server;
pub mod wire;

pub use api::{SimulateRequest, SweepRequest};
pub use server::{Server, ServerConfig};

//! # ptb-serve
//!
//! A long-running simulation service for the PTB reproduction: an
//! HTTP/1.1 daemon (plain `std::net`, no external dependencies) that
//! keeps one [`ptb_bench::ActivityCache`] warm across requests and
//! shares it over a fixed worker pool, so interactive exploration of
//! the design space — one policy/TW point per request, or a sharded TW
//! sweep — pays for activity generation once instead of once per
//! invocation.
//!
//! ## API
//!
//! | Route | Body | Response |
//! |---|---|---|
//! | `POST /simulate` | `{"network", "policy", "tw", "quick"?, "seed"?}` | `NetworkReport` JSON |
//! | `POST /sweep` | `{"network", "policy", "tws", "quick"?, "seed"?, "background"?}` | `[SweepRow]`, or `202 {"job": id}` |
//! | `GET /jobs/{id}` | — | job status + rows when done |
//! | `GET /metrics` | — | counters, latency percentiles, cache stats |
//! | `GET /healthz` | — | `{"status": "ok"}` |
//! | `POST /shutdown` | — | responds, then stops the daemon |
//!
//! `network` is a built-in name (`DVS-Gesture`, `CIFAR10-DVS`,
//! `AlexNet`, `CIFAR10`) or a full inline `NetworkSpec`; `policy` is a
//! label (`PTB+StSAP`) or serde form (`{"Ptb": {"stsap": true}}`).
//! Responses are bit-identical to the in-process harness:
//! `/simulate` to `ptb_bench::run_network_cached`, `/sweep` to
//! `ptb_bench::sweep_summary_cached` (pinned by
//! `tests/service_roundtrip.rs`).
//!
//! See `docs/ARCHITECTURE.md` ("The simulation service") for the
//! request lifecycle and the deadlock-free sweep sharding design, and
//! `EXPERIMENTS.md` for the `PTB_ADDR` / `PTB_WORKERS` /
//! `PTB_QUEUE_CAP` knobs and the `ptb-load` load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use api::{SimulateRequest, SweepRequest};
pub use server::{Server, ServerConfig};

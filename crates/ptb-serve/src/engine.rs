//! The codec-independent job engine: everything between "a validated
//! request arrived" and "here is its outcome".
//!
//! The transport layer ([`crate::server`]) owns sockets, HTTP framing,
//! keep-alive, and codec negotiation; this module owns the shared
//! simulation state — the [`ActivityCache`], the job registry, the
//! journal, metrics, and deadlines — and executes requests against it.
//! An [`Engine`] method returns an [`Outcome`], a typed result that
//! the transport renders as a JSON body or as a `PTBW1` frame
//! ([`crate::wire`]), which is what makes responses bit-identical
//! across codecs by construction — there is exactly one execution
//! path, and the codecs differ only in how its result is written down.
//! (Memoized reports additionally cache the transport's rendering per
//! codec — see [`MemoReport`] — but the bytes are still produced by the
//! transport's own closures, exactly once.) A future cluster RPC
//! becomes a third renderer over this same API, not a rewrite.
//!
//! Sweep-shard fan-out stays transport-side (the bounded work queue
//! lives with the worker pool), so [`Engine::sweep`] takes an `offer`
//! callback: the engine decides *that* shards should be offered, the
//! transport decides *where* they go.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use ptb_accel::audit::AuditLevel;
use ptb_accel::report::NetworkReport;
use ptb_bench::{run_network_verified, ActivityCache, RunOptions, SweepRow};
use serde::{Serialize, Value};

use crate::api;
use crate::jobs::{JobRegistry, SweepJob};
use crate::journal::JobJournal;
use crate::metrics::Metrics;

/// `Retry-After` seconds suggested on backpressure responses. The
/// service's work items are sub-second in quick mode and a few seconds
/// at full fidelity, so "come back in a second" is honest guidance.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Bound on memoized `/simulate` reports. A report is a pure function
/// of its request, so identical repeats (dashboards polling one
/// configuration, warm load tests) can skip the simulation entirely;
/// at the cap the memo is simply cleared — the entries are
/// recomputable, so eviction needs no bookkeeping.
pub const REPORT_MEMO_CAP: usize = 64;

/// A `/simulate` report plus its rendered response body in each codec,
/// produced once and shared by every request that hits the same memo
/// entry. Rendering is deterministic (same report, same bytes), so
/// caching it preserves the cross-codec bit-identity guarantee while
/// letting a warm repeat skip re-serializing a multi-kilobyte report.
/// The engine stays codec-neutral: it only holds the cells; the
/// transport supplies the render closures.
pub struct MemoReport {
    /// The structured simulation report.
    pub report: NetworkReport,
    json: OnceLock<Option<String>>,
    ptbw: OnceLock<Vec<u8>>,
}

impl MemoReport {
    /// Wraps a freshly computed report with empty render cells.
    pub fn new(report: NetworkReport) -> Self {
        MemoReport {
            report,
            json: OnceLock::new(),
            ptbw: OnceLock::new(),
        }
    }

    /// The JSON response body, rendered by `render` on first use and
    /// cached (`None` when serialization failed — also cached, the
    /// report won't serialize differently next time).
    pub fn json_body(&self, render: impl FnOnce(&NetworkReport) -> Option<String>) -> Option<&str> {
        self.json.get_or_init(|| render(&self.report)).as_deref()
    }

    /// The binary (`PTBW1`) response frame, rendered by `render` on
    /// first use and cached.
    pub fn ptbw_body(&self, render: impl FnOnce(&NetworkReport) -> Vec<u8>) -> &[u8] {
        self.ptbw.get_or_init(|| render(&self.report))
    }
}

/// The shared simulation state and the request-execution logic over it.
/// One per server; every worker and the acceptor share it via `Arc`.
pub struct Engine {
    /// The cross-request activity cache (coalesces identical in-flight
    /// generations).
    pub cache: ActivityCache,
    /// Service metrics, snapshotted by `GET /metrics`.
    pub metrics: Metrics,
    /// Registry of background sweep jobs.
    pub jobs: JobRegistry,
    /// Durable job journal, when a job directory is configured.
    pub journal: Option<Arc<JobJournal>>,
    /// Server-default request deadline, measured from enqueue.
    pub deadline: Option<Duration>,
    /// Default audit level for requests that don't set `verify`.
    pub verify: AuditLevel,
    /// Admission watermark (`PTB_MEM_WATERMARK_BYTES`): when the
    /// cache's tracked resident bytes exceed it, new heavy work is shed
    /// with `503` + `Retry-After` instead of letting memory pressure
    /// kill the process. `None` disables the check.
    pub mem_watermark: Option<u64>,
    /// Retention window for terminal jobs and their journal/quarantine
    /// files (`PTB_JOB_RETAIN`).
    pub job_retain: Duration,
    /// Byte budget for the journal directory (`PTB_JOB_DIR_BYTES`);
    /// `None` means unbounded.
    pub job_dir_bytes: Option<u64>,
    /// Completed `/simulate` reports keyed by their full request
    /// identity (resolved spec, policy, TW, fidelity, seed). Only
    /// unaudited runs hit it: an audited request must actually re-run
    /// under audit, never be answered from memory. Serving a memoized
    /// report is bit-identical to re-running by the determinism
    /// guarantee (`DESIGN.md` §10); each entry also caches its rendered
    /// body per codec ([`MemoReport`]), so a warm repeat skips both the
    /// simulation and the serialization.
    pub report_memo: Mutex<HashMap<String, Arc<MemoReport>>>,
}

/// The result of executing a request — pure data, rendered to bytes by
/// whichever codec the connection negotiated.
pub enum Outcome {
    /// A completed `/simulate` run (shared with the report memo, so a
    /// hit clones a pointer, not the report, and reuses the cached
    /// rendering).
    Report(Arc<MemoReport>),
    /// A completed synchronous `/sweep`.
    Rows(Vec<SweepRow>),
    /// A background `/sweep` was accepted (renders as `202`).
    Accepted {
        /// The job id to poll at `GET /jobs/{id}`.
        id: u64,
        /// Number of TW shards the job will run.
        total: usize,
    },
    /// The request failed.
    Error {
        /// HTTP-equivalent status code.
        status: u16,
        /// Human-readable detail.
        detail: String,
        /// Backpressure guidance in seconds (`503`s).
        retry_after: Option<u64>,
        /// Audit findings, when a verified run diverged.
        audit: Option<Value>,
    },
}

impl Outcome {
    /// The HTTP status this outcome renders as.
    pub fn status(&self) -> u16 {
        match self {
            Outcome::Report(_) | Outcome::Rows(_) => 200,
            Outcome::Accepted { .. } => 202,
            Outcome::Error { status, .. } => *status,
        }
    }

    /// A `400 Bad Request` (body failed to decode in either codec).
    pub fn bad_request(detail: impl Into<String>) -> Outcome {
        Outcome::Error {
            status: 400,
            detail: detail.into(),
            retry_after: None,
            audit: None,
        }
    }

    /// A `422` from request validation. Public so the cluster
    /// coordinator's validation errors render byte-identically.
    pub fn invalid(e: api::ValidationError) -> Outcome {
        Outcome::Error {
            status: 422,
            detail: e.0,
            retry_after: None,
            audit: None,
        }
    }

    /// A `503` + `Retry-After` backpressure outcome.
    pub fn unavailable(detail: impl Into<String>) -> Outcome {
        Outcome::Error {
            status: 503,
            detail: detail.into(),
            retry_after: Some(RETRY_AFTER_SECS),
            audit: None,
        }
    }
}

impl Engine {
    /// Executes a validated-on-entry `POST /simulate` request: resolve,
    /// validate, run (audited when requested), and either hand back the
    /// report or — on any audit finding — the findings instead of the
    /// untrustworthy numbers.
    pub fn simulate(&self, req: &api::SimulateRequest) -> Outcome {
        let verify = match api::validate_verify(req.verify.as_deref(), self.verify) {
            Ok(v) => v,
            Err(e) => return Outcome::invalid(e),
        };
        let opts = run_options(req.quick, req.seed, verify);

        // Identical unaudited requests are answered from the report
        // memo: a report is a pure function of this key, so the served
        // bytes are bit-identical to a fresh run. Audited requests
        // always run — the caller asked for the work to be *checked*,
        // not for an answer. The key is built from the raw request
        // identity (no spec resolution or `Value` tree on the warm
        // path); NUL separators can't collide because built-in network
        // names contain no NULs, inline specs get a distinct prefix,
        // and only requests that validated and ran cleanly are stored.
        let memo_key = (!verify.is_on()).then(|| {
            let network = match &req.network {
                api::NetworkRef::Name(name) => format!("n\0{name}"),
                api::NetworkRef::Inline(spec) => format!(
                    "i\0{}",
                    serde_json::to_string(spec).expect("key serialization")
                ),
            };
            format!(
                "{network}\0{}\0{}\0{}\0{}",
                req.policy.0.label(),
                req.tw,
                req.quick.unwrap_or(false),
                opts.seed
            )
        });
        if let Some(key) = &memo_key {
            let memo = self
                .report_memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(report) = memo.get(key).cloned() {
                self.metrics
                    .report_memo_hits
                    .fetch_add(1, Ordering::Relaxed);
                return Outcome::Report(report);
            }
        }

        let spec = match api::resolve_network(&req.network) {
            Ok(s) => s,
            Err(e) => return Outcome::invalid(e),
        };
        if let Err(e) = api::validate_tw(req.tw) {
            return Outcome::invalid(e);
        }
        let (report, audit) = run_network_verified(&spec, req.policy.0, req.tw, &opts, &self.cache);
        self.metrics
            .audit_mismatches
            .fetch_add(audit.mismatches, Ordering::Relaxed);
        self.metrics
            .acc_saturated
            .fetch_add(audit.saturated, Ordering::Relaxed);
        if !audit.is_clean() {
            // The report diverged from the reference model: serve the
            // findings, never the untrustworthy numbers.
            return Outcome::Error {
                status: 500,
                detail: format!("simulation failed audit at level {}", audit.level.label()),
                retry_after: None,
                audit: Some(audit.to_value()),
            };
        }
        let report = Arc::new(MemoReport::new(report));
        if let Some(key) = memo_key {
            let mut memo = self
                .report_memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if memo.len() >= REPORT_MEMO_CAP {
                memo.clear();
            }
            memo.insert(key, Arc::clone(&report));
        }
        Outcome::Report(report)
    }

    /// Executes a `POST /sweep` request. `offer` hands a job with
    /// unclaimed shards to the transport's worker pool and returns how
    /// many helpers were enqueued; the engine always guarantees progress
    /// itself when the pool can't help.
    pub fn sweep(
        &self,
        req: &api::SweepRequest,
        enqueued: Instant,
        offer: &dyn Fn(&Arc<SweepJob>) -> usize,
    ) -> Outcome {
        let spec = match api::resolve_network(&req.network) {
            Ok(s) => s,
            Err(e) => return Outcome::invalid(e),
        };
        if let Err(e) = api::validate_tws(&req.tws) {
            return Outcome::invalid(e);
        }
        let verify = match api::validate_verify(req.verify.as_deref(), self.verify) {
            Ok(v) => v,
            Err(e) => return Outcome::invalid(e),
        };
        let quick = req.quick.unwrap_or(false);
        let opts = run_options(req.quick, req.seed, verify);
        let seed = opts.seed;
        let deadline = self.effective_deadline(req.deadline_ms, enqueued);

        if req.background.unwrap_or(false) {
            // Durable path: reserve the id first so the journal file
            // name is final, register, then journal the submission
            // *before* offering shards — a shard record must never
            // precede its submit record.
            let id = self.jobs.reserve_id();
            let mut job = SweepJob::new(spec, req.policy.0, req.tws.clone(), opts);
            if let Some(journal) = &self.journal {
                job = job.with_journal(Arc::clone(journal), id);
            }
            let job = Arc::new(job);
            if !self.jobs.insert(id, Arc::clone(&job)) {
                return Outcome::unavailable("job registry is full");
            }
            if let Some(journal) = &self.journal {
                journal.log_submit(id, &job.spec, job.policy, &job.tws, quick, seed, verify);
            }
            let offered = offer(&job);
            // Guarantee progress even if no shard item could be offered
            // (full queue, or a single-worker pool): run the shards here
            // before answering, trading response latency for liveness.
            if offered == 0 {
                job.run_shards_until(&self.cache, deadline, Some(&self.metrics));
            }
            return Outcome::Accepted {
                id,
                total: job.tws.len(),
            };
        }

        // Synchronous: this handler claims shards alongside the pool,
        // then waits out any shard still running on another worker.
        let job = Arc::new(SweepJob::new(spec, req.policy.0, req.tws.clone(), opts));
        offer(&job);
        job.run_shards_until(&self.cache, deadline, Some(&self.metrics));
        let terminal = match deadline {
            Some(d) => job.wait_until(d),
            None => {
                job.wait();
                true
            }
        };
        if !terminal {
            self.metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return Outcome::unavailable(format!(
                "deadline expired with {}/{} shards complete",
                job.completed(),
                job.tws.len()
            ));
        }
        if let Some(reason) = job.failed() {
            let audit = job.audit();
            return Outcome::Error {
                status: 500,
                detail: format!("sweep failed: {reason}"),
                retry_after: None,
                audit: (!audit.is_clean()).then(|| audit.to_value()),
            };
        }
        match job.rows() {
            Some(rows) => Outcome::Rows(rows),
            None => Outcome::Error {
                status: 500,
                detail: "sweep neither completed nor failed".into(),
                retry_after: None,
                audit: None,
            },
        }
    }

    /// Resolves a request's effective deadline: its own `deadline_ms`
    /// wins, else the server default; measured from enqueue.
    pub fn effective_deadline(
        &self,
        request_ms: Option<u64>,
        enqueued: Instant,
    ) -> Option<Instant> {
        request_ms
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
            .or(self.deadline)
            .map(|d| enqueued + d)
    }

    /// Rebuilds the job registry from the journal at boot: completed
    /// jobs reload their rows; unfinished ones resume with only the
    /// unjournaled shards claimable. `offer` enqueues a resumed job on
    /// the transport's pool and reports whether it fit.
    pub fn replay_journal(&self, mut offer: impl FnMut(Arc<SweepJob>) -> bool) {
        let Some(journal) = &self.journal else {
            return;
        };
        let mut max_id = 0u64;
        for replayed in journal.replay() {
            max_id = max_id.max(replayed.id);
            let opts = run_options(Some(replayed.quick), Some(replayed.seed), replayed.verify);
            let unfinished = !replayed.done;
            // Under a non-off verify level even a *finished* job goes
            // back to the pool: its replayed rows get recomputed and
            // diffed before it is served again (see
            // `SweepJob::run_shards_until`).
            let needs_pool = unfinished || (replayed.verify.is_on() && !replayed.shards.is_empty());
            let job = Arc::new(
                SweepJob::resumed(
                    replayed.spec,
                    replayed.policy,
                    replayed.tws,
                    opts,
                    replayed.shards,
                )
                .with_journal(Arc::clone(journal), replayed.id),
            );
            if !self.jobs.insert(replayed.id, Arc::clone(&job)) {
                eprintln!(
                    "warning: job registry full; journaled job {} not resumed",
                    replayed.id
                );
                continue;
            }
            if needs_pool && !offer(job) {
                // Queue smaller than the backlog of resumed jobs: this
                // one stays registered but idle until the next restart.
                eprintln!(
                    "warning: work queue full; journaled job {} resumes on next boot",
                    replayed.id
                );
            }
        }
        self.jobs.bump_next_id(max_id + 1);
    }

    /// Admission control for *heavy* routes (`POST /simulate`,
    /// `POST /sweep`): sheds with `503` + `Retry-After` when the
    /// cache's tracked resident bytes exceed the watermark, or when the
    /// transport reports its queue at least half full (`queue` =
    /// `(depth, cap)`). Light routes — `/healthz`, `/metrics`,
    /// `/jobs/{id}` polls — never call this, so monitoring and polling
    /// ride a fast path that overload cannot starve. Returns the
    /// outcome to serve when shedding.
    pub fn admit_heavy(&self, queue: (usize, usize)) -> Result<(), Outcome> {
        if let Some(watermark) = self.mem_watermark {
            let resident = self.cache.resident_bytes();
            if resident > watermark {
                self.metrics.admission_shed.fetch_add(1, Ordering::Relaxed);
                return Err(Outcome::unavailable(format!(
                    "over memory watermark ({resident} > {watermark} resident bytes), \
                     try again later"
                )));
            }
        }
        let (depth, cap) = queue;
        if cap > 0 && depth >= cap.div_ceil(2) {
            self.metrics.admission_shed.fetch_add(1, Ordering::Relaxed);
            return Err(Outcome::unavailable(format!(
                "work queue under pressure ({depth}/{cap}), try again later"
            )));
        }
        Ok(())
    }

    /// One resource-governance pass, driven by the server's GC thread
    /// (and callable directly by tests): expires terminal jobs past the
    /// retention window (reclaiming registry slots and journal files),
    /// then sweeps the journal directory for aged-out quarantine files,
    /// stale temps, and — under `PTB_JOB_DIR_BYTES` — disk-quota
    /// victims. Returns how many jobs expired.
    pub fn gc(&self) -> usize {
        let expired = self.jobs.expire_terminal(self.job_retain);
        if let Some(journal) = &self.journal {
            for &id in &expired {
                journal.remove(id);
            }
            journal.gc(self.job_retain, self.job_dir_bytes, &|id| {
                self.jobs.expendable(id)
            });
        }
        self.metrics
            .jobs_expired
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        expired.len()
    }
}

/// Builds the per-request run options: quick or full fidelity, caller's
/// seed, the resolved audit level, serial position scan (parallelism
/// comes from the pool, not from within a layer).
pub fn run_options(quick: Option<bool>, seed: Option<u64>, verify: AuditLevel) -> RunOptions {
    let mut opts = if quick.unwrap_or(false) {
        RunOptions::quick()
    } else {
        RunOptions::full()
    };
    if let Some(seed) = seed {
        opts.seed = seed;
    }
    opts.verify = verify;
    opts
}

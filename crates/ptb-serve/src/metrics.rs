//! Service metrics: lock-free request counters and log₂-bucketed
//! latency histograms, snapshotted by `GET /metrics`.
//!
//! Histograms use power-of-two microsecond buckets (bucket *i* covers
//! latencies in `[2^i, 2^(i+1))` µs, bucket 0 also absorbing sub-µs
//! values), which spans 1 µs to over an hour in [`BUCKETS`] counters
//! and makes recording a single `fetch_add`. Quantiles are read back by
//! walking the cumulative counts and reporting the upper edge of the
//! bucket containing the rank — an upper bound with ≤ 2× resolution
//! error, which is plenty for "did the p99 regress 10×" monitoring and
//! costs no locks on the request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: covers up to `2^32` µs ≈ 71 minutes, beyond
/// which everything lands in the last bucket.
pub const BUCKETS: usize = 32;

/// A fixed-bucket latency histogram, safe for concurrent recording.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket index = floor(log2(us)), clamped; 0 and 1 µs share
        // bucket 0.
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Upper edge (µs) of the bucket holding quantile `q` in `0..=1`,
    /// or `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Rank of the quantile observation, 1-based, clamped to total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(upper_edge_us(i));
            }
        }
        Some(upper_edge_us(BUCKETS - 1))
    }

    /// Snapshot of the raw bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }
}

/// Upper edge of bucket `i` in microseconds (`2^(i+1) - 1`).
fn upper_edge_us(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

/// One endpoint's counters: requests served, errors among them, and the
/// latency histogram (measured from dequeue to response written).
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Requests routed to this endpoint.
    pub requests: AtomicU64,
    /// The subset that answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Handling latency.
    pub latency: Histogram,
}

impl EndpointMetrics {
    /// Records one handled request.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// JSON object fragment for `/metrics`.
    pub fn to_json(&self) -> String {
        let p50 = self.latency.quantile_us(0.50);
        let p99 = self.latency.quantile_us(0.99);
        format!(
            "{{\"requests\": {}, \"errors\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            p50.map_or("null".to_string(), |v| v.to_string()),
            p99.map_or("null".to_string(), |v| v.to_string()),
        )
    }
}

/// All service-level metrics, shared across workers behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (whether or not a request parsed).
    pub accepted: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests that failed to parse (4xx before routing).
    pub bad_requests: AtomicU64,
    /// Panics caught by a worker's `catch_unwind` containment (a shard
    /// or handler panicked; the daemon kept running).
    pub panics_contained: AtomicU64,
    /// Requests answered `503` because their deadline (`PTB_DEADLINE_MS`
    /// or the request's `deadline_ms`) expired at dequeue or mid-sweep.
    pub deadline_expired: AtomicU64,
    /// Audit findings across every verified run (`PTB_VERIFY` or a
    /// request's `verify`): replay divergences, packing violations,
    /// corrupt activity, journal-row mismatches. Zero on a healthy
    /// daemon; any increment means a simulation disagreed with the
    /// reference model and its response/job was failed.
    pub audit_mismatches: AtomicU64,
    /// Saturated (clamped) accumulator events observed by audited runs.
    /// Saturation is not corruption — the arithmetic clamps instead of
    /// wrapping — but a nonzero count means energy/latency tallies are
    /// lower bounds and worth investigating.
    pub acc_saturated: AtomicU64,
    /// Requests that arrived in the JSON codec.
    pub codec_json: AtomicU64,
    /// Requests that arrived in the binary `PTBW1` codec
    /// (`Content-Type: application/x-ptbw`).
    pub codec_bin: AtomicU64,
    /// Requests served over a reused (kept-alive) connection — every
    /// request on a connection after its first.
    pub keepalive_reused: AtomicU64,
    /// The subset of reused requests that were already fully buffered
    /// when the previous response was written (the client pipelined).
    pub pipelined: AtomicU64,
    /// `/simulate` requests answered from the engine's report memo
    /// (identical unaudited request repeated; the simulation was
    /// skipped and the memoized report served bit-identically).
    pub report_memo_hits: AtomicU64,
    /// Heavy requests (`POST /simulate`, `POST /sweep`) shed by
    /// admission control with a `503` carrying `Retry-After` — the
    /// resident-bytes watermark or queue-depth check fired *before*
    /// memory pressure could hurt the process. Light routes are never
    /// shed.
    pub admission_shed: AtomicU64,
    /// Sweep dispatches rejected with `409` because they carried an
    /// epoch below this worker's high-water mark — a deposed (zombie)
    /// coordinator was fenced at this boundary. See `docs/PROTOCOL.md`
    /// §7.
    pub fenced: AtomicU64,
    /// Terminal background jobs expired by retention GC (their registry
    /// entries and journal files were reclaimed; later polls answer
    /// `404` with `"gone": true`).
    pub jobs_expired: AtomicU64,
    /// Per-endpoint counters, keyed by route.
    pub simulate: EndpointMetrics,
    /// `/sweep` counters.
    pub sweep: EndpointMetrics,
    /// `/jobs/{id}` counters.
    pub jobs: EndpointMetrics,
    /// `/metrics`, `/healthz`, and `/shutdown` counters (cheap
    /// admin/introspection routes share one bucket).
    pub admin: EndpointMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(5));
        h.record(Duration::from_secs(7200)); // beyond range: last bucket
        assert_eq!(h.count(), 5);
        let snap = h.snapshot();
        assert_eq!(snap[0], 2, "0 and 1 us share bucket 0");
        assert_eq!(snap[1], 1, "3 us lands in [2, 4)");
        assert_eq!(snap[BUCKETS - 1], 1, "outliers clamp to the last bucket");
    }

    #[test]
    fn quantiles_are_upper_bounds_in_rank_order() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None, "empty histogram");
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.50).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        assert!(p50 >= 160, "p50 upper bound covers the median, got {p50}");
        assert!(p99 >= 100_000, "p99 covers the tail, got {p99}");
        assert!(p50 <= p99);
        // Upper bound is within 2x of the true value's bucket.
        assert!(p50 < 160 * 4, "resolution bound, got {p50}");
    }

    #[test]
    fn endpoint_metrics_count_errors_and_render_json() {
        let m = EndpointMetrics::default();
        m.record(200, Duration::from_micros(50));
        m.record(422, Duration::from_micros(70));
        let json = m.to_json();
        assert!(json.contains("\"requests\": 2"), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(!json.contains("null"), "{json}");
    }
}

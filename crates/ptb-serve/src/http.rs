//! Minimal HTTP/1.1 framing over blocking `std::net` streams.
//!
//! The service speaks just enough HTTP for its JSON API: one request
//! per connection (`Connection: close` on every response), no chunked
//! transfer encoding, no keep-alive, no TLS. This keeps the daemon
//! dependency-free (the build environment is offline; see the
//! workspace `Cargo.toml` header) while remaining compatible with
//! `curl`, browsers, and the bundled `ptb-load` client.
//!
//! Robustness is the contract here, not coverage of the RFC: arbitrary,
//! truncated, oversized, or malicious bytes must produce a 4xx response
//! (or a clean close), never a panic and never unbounded memory growth.
//! `ptb-serve/tests/http_robustness.rs` property-tests this.

use std::io::{Read, Write};
use std::time::Duration;

/// Maximum size of the request head (request line + headers) in bytes.
/// Heads beyond this produce `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum accepted request body size in bytes. Larger declared or
/// actual bodies produce `413 Content Too Large`. The service's biggest
/// legitimate request (a sweep over every TW) is well under 1 KiB.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// How long a connection may dribble its request before being dropped.
/// Prevents idle or stalled clients from pinning a worker forever.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request: method, percent-decoded-free target path (query
/// strings are not used by this API and are left attached), and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client per HTTP (`GET`,
    /// `POST`, ...). Not validated against a method whitelist here;
    /// routing rejects what it does not know.
    pub method: String,
    /// The request target as sent (e.g. `/simulate`, `/jobs/3`).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each maps to one 4xx status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header syntax, or framing; or the
    /// connection closed mid-request. -> `400 Bad Request`.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`]. -> `431`.
    HeadTooLarge,
    /// Declared or delivered body exceeded [`MAX_BODY_BYTES`]. -> `413`.
    BodyTooLarge,
}

impl RequestError {
    /// The HTTP status code this error reports as.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Malformed(_) => 400,
            RequestError::HeadTooLarge => 431,
            RequestError::BodyTooLarge => 413,
        }
    }

    /// Human-readable detail for the error response body.
    pub fn detail(&self) -> String {
        match self {
            RequestError::Malformed(m) => m.clone(),
            RequestError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            RequestError::BodyTooLarge => {
                format!("request body exceeds {MAX_BODY_BYTES} bytes")
            }
        }
    }
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// I/O errors (including read timeouts) are folded into
/// [`RequestError::Malformed`]: from the worker's perspective a stalled
/// or broken client and a malformed one get the same treatment — a 4xx
/// attempt and a close.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut head = Vec::with_capacity(512);
    let mut spill = Vec::new(); // body bytes read past the head
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge);
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| RequestError::Malformed(format!("read: {e}")))?;
        if n == 0 {
            return Err(RequestError::Malformed(
                "connection closed before end of request head".into(),
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    // Anything past the blank line already read belongs to the body.
    spill.extend_from_slice(&head[head_end..]);
    head.truncate(head_end);

    let text = std::str::from_utf8(&head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header line {line:?}")))?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(RequestError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    if spill.len() > content_length {
        return Err(RequestError::Malformed(
            "more body bytes than Content-Length declared".into(),
        ));
    }

    let mut body = spill;
    while body.len() < content_length {
        let want = (content_length - body.len()).min(buf.len());
        let n = stream
            .read(&mut buf[..want])
            .map_err(|e| RequestError::Malformed(format!("read body: {e}")))?;
        if n == 0 {
            return Err(RequestError::Malformed(
                "connection closed before end of request body".into(),
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// An outgoing response; always `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Media type of `body` (e.g. `application/json`).
    pub content_type: &'static str,
    /// Response payload.
    pub body: Vec<u8>,
    /// When set, a `Retry-After: N` header (seconds) is emitted —
    /// backpressure guidance on `503` responses.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// An error response with a JSON `{"error": detail}` body.
    pub fn error(status: u16, detail: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!(
                "{{\"error\": {}}}",
                serde_json::to_string(&detail).expect("string serialization"),
            )
            .into_bytes(),
            retry_after: None,
        }
    }

    /// A `503 Service Unavailable` carrying `Retry-After` backpressure
    /// guidance — the contract for a full queue or an expired deadline
    /// (`ptb-load`'s retry loop honors the header).
    pub fn unavailable(detail: &str, retry_after_secs: u64) -> Self {
        let mut resp = Response::error(503, detail);
        resp.retry_after = Some(retry_after_secs);
        resp
    }

    /// Serializes the response to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let retry = self
            .retry_after
            .map(|s| format!("Retry-After: {s}\r\n"))
            .unwrap_or_default();
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry}Connection: close\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to `stream`; errors are ignored (the client
    /// may have hung up, which is its prerogative).
    pub fn write_to(&self, stream: &mut impl Write) {
        let _ = stream.write_all(&self.to_bytes());
        let _ = stream.flush();
    }
}

/// Reason phrase for the status codes this service emits.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut std::io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_get_and_post() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/healthz"));
        assert!(r.body.is_empty());

        let r = parse(b"POST /simulate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn body_may_arrive_with_the_head_or_after_it() {
        // Cursor delivers everything at once: spill path.
        let r = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn malformed_requests_are_4xx_not_panics() {
        for (bytes, status) in [
            (&b""[..], 400),
            (b"\r\n\r\n", 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x\r\n\r\n", 400),
            (b"GET /x SPDY/9\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            (b"GET /x HTTP/1.1\r\nHost: x\r\n", 400), // truncated head
            (b"\xff\xfe GET", 400),
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status(), status, "{bytes:?}");
        }
    }

    #[test]
    fn oversized_head_and_body_are_limited() {
        let mut big_head = b"GET /x HTTP/1.1\r\n".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse(&big_head).unwrap_err(), RequestError::HeadTooLarge);

        let declared = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(declared.as_bytes()).unwrap_err(),
            RequestError::BodyTooLarge
        );
    }

    #[test]
    fn responses_have_correct_framing() {
        let bytes = Response::json("{}".into()).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let err = Response::error(404, "no such route");
        assert!(String::from_utf8(err.to_bytes())
            .unwrap()
            .contains("no such route"));
    }

    #[test]
    fn unavailable_responses_carry_retry_after() {
        let text = String::from_utf8(Response::unavailable("busy", 2).to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");

        let plain = String::from_utf8(Response::error(503, "busy").to_bytes()).unwrap();
        assert!(!plain.contains("Retry-After"), "{plain}");
    }
}

//! Minimal HTTP/1.1 framing over blocking `std::net` streams, with
//! keep-alive and request pipelining.
//!
//! The service speaks just enough HTTP for its two codecs: requests are
//! read through a [`ConnReader`] that buffers leftover bytes between
//! requests on one connection, so a client may keep a connection open
//! (HTTP/1.1 default) and even write its next request before reading
//! the previous response (pipelining). No chunked transfer encoding, no
//! TLS. This keeps the daemon dependency-free (the build environment is
//! offline; see the workspace `Cargo.toml` header) while remaining
//! compatible with `curl`, browsers, and the bundled `ptb-load` client.
//!
//! Codec negotiation is per request via `Content-Type`:
//! `application/x-ptbw` selects the binary `PTBW1` codec
//! ([`crate::wire`]); anything else (or no body) is JSON. The full
//! contract lives in `docs/PROTOCOL.md`.
//!
//! Robustness is the contract here, not coverage of the RFC: arbitrary,
//! truncated, oversized, or malicious bytes must produce a 4xx response
//! (or a clean close), never a panic and never unbounded memory growth.
//! `ptb-serve/tests/http_robustness.rs` property-tests this.

use std::io::{Read, Write};
use std::time::Duration;

/// Maximum size of the request head (request line + headers) in bytes.
/// Heads beyond this produce `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum accepted request body size in bytes. Larger declared or
/// actual bodies produce `413 Content Too Large`. The service's biggest
/// legitimate request (an inline network spec) is well under 1 MiB.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// How long a connection may dribble its *first* request before being
/// dropped. Prevents idle or stalled clients from pinning a worker.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a kept-alive connection may sit idle between requests
/// before the server closes it. Shorter than [`READ_TIMEOUT`]: an idle
/// reused connection has already proven it can speak, and the worker it
/// pins is a scarce resource.
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(5);

/// Upper bound on requests served over one connection; the response to
/// request number `MAX_REQUESTS_PER_CONN` closes. Bounds per-connection
/// resource lifetime without ever bothering a legitimate client.
pub const MAX_REQUESTS_PER_CONN: usize = 1024;

/// Which wire codec a request (and therefore its response) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Text JSON bodies (`application/json`); the default.
    Json,
    /// `PTBW1` binary frames ([`crate::wire`]), negotiated by
    /// `Content-Type: application/x-ptbw`.
    Binary,
}

impl Codec {
    /// The `Content-Type` value this codec's responses carry.
    pub fn content_type(self) -> &'static str {
        match self {
            Codec::Json => "application/json",
            Codec::Binary => crate::wire::CONTENT_TYPE,
        }
    }
}

/// A parsed request: method, target path, body, and the connection
/// semantics negotiated by its headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client per HTTP (`GET`,
    /// `POST`, ...). Not validated against a method whitelist here;
    /// routing rejects what it does not know.
    pub method: String,
    /// The request target as sent (e.g. `/simulate`, `/jobs/3`).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// The negotiated codec (`Content-Type: application/x-ptbw` selects
    /// [`Codec::Binary`]; everything else is JSON).
    pub codec: Codec,
    /// Whether the client wants the connection kept open after the
    /// response: HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and
    /// a `Connection: close`/`keep-alive` header overrides either. The
    /// server may still close (see `docs/PROTOCOL.md`).
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header syntax, or framing; or the
    /// connection closed/stalled mid-request. -> `400 Bad Request`.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`]. -> `431`.
    HeadTooLarge,
    /// Declared body exceeded [`MAX_BODY_BYTES`]. -> `413`.
    BodyTooLarge,
    /// The connection ended (EOF or idle timeout) *between* requests,
    /// with no partial request pending — a clean close, not a protocol
    /// error. No response is owed; the nominal status is `408`.
    Idle,
}

impl RequestError {
    /// The HTTP status code this error reports as.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Malformed(_) => 400,
            RequestError::HeadTooLarge => 431,
            RequestError::BodyTooLarge => 413,
            RequestError::Idle => 408,
        }
    }

    /// Human-readable detail for the error response body.
    pub fn detail(&self) -> String {
        match self {
            RequestError::Malformed(m) => m.clone(),
            RequestError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            RequestError::BodyTooLarge => {
                format!("request body exceeds {MAX_BODY_BYTES} bytes")
            }
            RequestError::Idle => "connection idle".into(),
        }
    }
}

/// A buffered request reader for one connection.
///
/// Bytes read from the stream but not consumed by the current request
/// stay buffered for the next one — this is what makes keep-alive and
/// pipelining work: a client may send two requests back to back, and
/// the second is parsed entirely from the buffer without touching the
/// socket again.
pub struct ConnReader<S> {
    stream: S,
    /// Bytes read from the socket but not yet consumed by a request.
    buf: Vec<u8>,
    socket_reads: u64,
}

impl<S: Read> ConnReader<S> {
    /// Wraps a stream. The reader owns no timeout policy; set read
    /// timeouts on the underlying socket between calls.
    pub fn new(stream: S) -> Self {
        ConnReader {
            stream,
            buf: Vec::with_capacity(512),
            socket_reads: 0,
        }
    }

    /// Bytes already buffered for the next request (nonzero after a
    /// pipelined client wrote ahead).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// How many socket reads this reader has performed — unchanged
    /// across a `read_request` call iff that request was served entirely
    /// from the buffer (i.e. it was pipelined).
    pub fn socket_reads(&self) -> u64 {
        self.socket_reads
    }

    /// One socket read appended to the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 1024];
        let n = self.stream.read(&mut chunk)?;
        self.socket_reads += 1;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Ensures at least `want` buffered bytes, or errors. EOF and I/O
    /// errors (including timeouts) with an empty buffer are
    /// [`RequestError::Idle`] — the connection simply ended between
    /// requests; with a partial request pending they are `Malformed`.
    fn fill_to(&mut self, want: usize, what: &str) -> Result<(), RequestError> {
        while self.buf.len() < want {
            match self.fill() {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        RequestError::Idle
                    } else {
                        RequestError::Malformed(format!("connection closed {what}"))
                    })
                }
                Ok(_) => {}
                Err(e) => {
                    return Err(if self.buf.is_empty() {
                        RequestError::Idle
                    } else {
                        RequestError::Malformed(format!("read {what}: {e}"))
                    })
                }
            }
        }
        Ok(())
    }

    /// Reads one HTTP/1.1 request, leaving any bytes past it buffered
    /// for the next call.
    pub fn read_request(&mut self) -> Result<Request, RequestError> {
        // Accumulate until the head terminator appears (it may already
        // be buffered from a pipelined write).
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(RequestError::HeadTooLarge);
            }
            // +1 forces a socket read: we need more bytes than we have.
            self.fill_to(self.buf.len() + 1, "before end of request head")?;
        };

        let parsed = parse_head(&self.buf[..head_end])?;
        if parsed.content_length > MAX_BODY_BYTES {
            return Err(RequestError::BodyTooLarge);
        }
        let total = head_end + parsed.content_length;
        self.fill_to(total, "before end of request body")?;

        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        Ok(Request {
            method: parsed.method,
            path: parsed.path,
            body,
            codec: parsed.codec,
            keep_alive: parsed.keep_alive,
        })
    }
}

/// Reads one request from a stream with no connection reuse — the
/// one-shot entry point used by tests; the server holds a [`ConnReader`]
/// across requests instead.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    ConnReader::new(stream).read_request()
}

/// The parsed request head, before the body is read.
struct ParsedHead {
    method: String,
    path: String,
    content_length: usize,
    codec: Codec,
    keep_alive: bool,
}

/// Parses the request line and headers (everything before the blank
/// line, terminator included in `head`).
fn parse_head(head: &[u8]) -> Result<ParsedHead, RequestError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    let mut codec = Codec::Json;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header line {line:?}")))?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(RequestError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        } else if name.eq_ignore_ascii_case("content-type") {
            // Parameters (`; charset=...`) don't change the codec.
            let media = value.trim().split(';').next().unwrap_or("").trim();
            if media.eq_ignore_ascii_case(crate::wire::CONTENT_TYPE) {
                codec = Codec::Binary;
            }
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Ok(ParsedHead {
        method: method.to_string(),
        path: path.to_string(),
        content_length,
        codec,
        keep_alive,
    })
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// An outgoing response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Media type of `body` (e.g. `application/json`).
    pub content_type: &'static str,
    /// Response payload.
    pub body: Vec<u8>,
    /// When set, a `Retry-After: N` header (seconds) is emitted —
    /// backpressure guidance on `503` responses.
    pub retry_after: Option<u64>,
    /// When set, a `Location:` header is emitted — the redirect target
    /// on `307` responses from a demoted cluster coordinator (see
    /// `docs/PROTOCOL.md` §7).
    pub location: Option<String>,
    /// Whether the server closes the connection after this response
    /// (`Connection: close` vs `keep-alive`). Constructors default to
    /// `true`; the keep-alive loop clears it when the connection
    /// persists, so one-shot call sites keep the old behavior.
    pub close: bool,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            location: None,
            close: true,
        }
    }

    /// An error response with a JSON `{"error": detail}` body.
    pub fn error(status: u16, detail: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!(
                "{{\"error\": {}}}",
                serde_json::to_string(&detail).expect("string serialization"),
            )
            .into_bytes(),
            retry_after: None,
            location: None,
            close: true,
        }
    }

    /// A `307 Temporary Redirect` to `target` (a `http://host:port`
    /// base URL) — how a demoted coordinator points clients at the
    /// active one. `307` (not `302`) so the client repeats the same
    /// method and body against the target.
    pub fn redirect(target: &str) -> Self {
        let mut resp = Response::error(307, &format!("not the active coordinator; try {target}"));
        resp.location = Some(target.to_string());
        resp
    }

    /// A `503 Service Unavailable` carrying `Retry-After` backpressure
    /// guidance — the contract for a full queue or an expired deadline
    /// (`ptb-load`'s retry loop honors the header).
    pub fn unavailable(detail: &str, retry_after_secs: u64) -> Self {
        let mut resp = Response::error(503, detail);
        resp.retry_after = Some(retry_after_secs);
        resp
    }

    /// Serializes the response to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let retry = self
            .retry_after
            .map(|s| format!("Retry-After: {s}\r\n"))
            .unwrap_or_default();
        let location = self
            .location
            .as_deref()
            .map(|t| format!("Location: {t}\r\n"))
            .unwrap_or_default();
        let conn = if self.close { "close" } else { "keep-alive" };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry}{location}Connection: {conn}\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to `stream`; errors are ignored (the client
    /// may have hung up, which is its prerogative).
    pub fn write_to(&self, stream: &mut impl Write) {
        let _ = stream.write_all(&self.to_bytes());
        let _ = stream.flush();
    }
}

/// Reason phrase for the status codes this service emits.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut std::io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_get_and_post() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/healthz"));
        assert!(r.body.is_empty());
        assert_eq!((r.codec, r.keep_alive), (Codec::Json, true));

        let r = parse(b"POST /simulate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn negotiates_codec_and_connection_headers() {
        let r = parse(
            b"POST /simulate HTTP/1.1\r\nContent-Type: application/x-ptbw\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.codec, Codec::Binary);

        let r =
            parse(b"POST /x HTTP/1.1\r\nContent-Type: APPLICATION/X-PTBW; v=1\r\n\r\n").unwrap();
        assert_eq!(r.codec, Codec::Binary, "case-insensitive, params ignored");

        let r = parse(b"POST /x HTTP/1.1\r\nContent-Type: application/json\r\n\r\n").unwrap();
        assert_eq!(r.codec, Codec::Json);

        let r = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse(b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn body_may_arrive_with_the_head_or_after_it() {
        // Cursor delivers everything at once: buffered path.
        let r = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_from_one_buffer() {
        let two =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = std::io::Cursor::new(two.to_vec());
        let mut reader = ConnReader::new(&mut cursor);
        let first = reader.read_request().unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(reader.buffered() > 0, "second request stays buffered");
        let reads_before = reader.socket_reads();
        let second = reader.read_request().unwrap();
        assert_eq!(
            (second.path.as_str(), second.body.as_slice()),
            ("/simulate", &b"hi"[..])
        );
        assert_eq!(
            reader.socket_reads(),
            reads_before,
            "second request needed no socket read"
        );
        // A third read finds a cleanly exhausted connection.
        assert_eq!(reader.read_request().unwrap_err(), RequestError::Idle);
    }

    #[test]
    fn malformed_requests_are_4xx_not_panics() {
        for (bytes, status) in [
            (&b"\r\n\r\n"[..], 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x\r\n\r\n", 400),
            (b"GET /x SPDY/9\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            (b"GET /x HTTP/1.1\r\nHost: x\r\n", 400), // truncated head
            (b"\xff\xfe GET", 400),
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status(), status, "{bytes:?}");
        }
        // Nothing at all is a clean idle close, not a protocol error.
        assert_eq!(parse(b"").unwrap_err(), RequestError::Idle);
    }

    #[test]
    fn oversized_head_and_body_are_limited() {
        let mut big_head = b"GET /x HTTP/1.1\r\n".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse(&big_head).unwrap_err(), RequestError::HeadTooLarge);

        let declared = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(declared.as_bytes()).unwrap_err(),
            RequestError::BodyTooLarge
        );
    }

    #[test]
    fn responses_have_correct_framing() {
        let bytes = Response::json("{}".into()).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut kept = Response::json("{}".into());
        kept.close = false;
        let text = String::from_utf8(kept.to_bytes()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");

        let err = Response::error(404, "no such route");
        assert!(String::from_utf8(err.to_bytes())
            .unwrap()
            .contains("no such route"));
    }

    #[test]
    fn unavailable_responses_carry_retry_after() {
        let text = String::from_utf8(Response::unavailable("busy", 2).to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");

        let plain = String::from_utf8(Response::error(503, "busy").to_bytes()).unwrap();
        assert!(!plain.contains("Retry-After"), "{plain}");
    }

    #[test]
    fn redirects_carry_a_location_header() {
        let resp = Response::redirect("http://127.0.0.1:9999");
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 307 Temporary Redirect\r\n"),
            "{text}"
        );
        assert!(
            text.contains("Location: http://127.0.0.1:9999\r\n"),
            "{text}"
        );

        // Non-redirect responses never emit a Location header.
        let plain = String::from_utf8(Response::json("{}".into()).to_bytes()).unwrap();
        assert!(!plain.contains("Location:"), "{plain}");
    }

    #[test]
    fn fencing_conflicts_have_a_reason_phrase() {
        let text = String::from_utf8(Response::error(409, "stale epoch").to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 409 Conflict\r\n"), "{text}");
    }
}

//! Request/response types of the JSON API, plus their validation.
//!
//! All inputs from the wire are validated *before* touching simulator
//! constructors that panic on bad arguments (`SimInputs::hpca22`
//! asserts its TW bounds; `FiringProfile` and `ConvShape` enforce their
//! invariants only through `new`, which serde derives bypass). A
//! validated request can be handed to the harness without further
//! checks.

use ptb_accel::audit::AuditLevel;
use ptb_accel::config::Policy;
use serde::de;
use serde::{Deserialize, Value};
use spikegen::NetworkSpec;

/// Upper bound on a request's operational period: bounds the memory one
/// inline spec can demand (activity tensors scale with `T`). The
/// longest built-in network runs 300 steps.
pub const MAX_TIMESTEPS: usize = 4096;

/// Upper bound on layers per inline spec (the built-ins have ≤ 8).
pub const MAX_LAYERS: usize = 64;

/// The network a request targets: a built-in referenced by name, or a
/// full inline [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkRef {
    /// A built-in benchmark, looked up via [`spikegen::network_by_name`].
    Name(String),
    /// A caller-supplied spec (validated by [`resolve_network`]).
    Inline(NetworkSpec),
}

impl Deserialize for NetworkRef {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(NetworkRef::Name(s.clone())),
            Value::Object(_) => Ok(NetworkRef::Inline(NetworkSpec::from_value(v)?)),
            other => Err(de::Error::expected("network name or spec object", other)),
        }
    }
}

/// A policy reference: the serde form of [`Policy`] (e.g.
/// `{"Ptb": {"stsap": true}}` or `"Ann"`) or a display label (e.g.
/// `"PTB+StSAP"`, case-insensitive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyRef(pub Policy);

impl Deserialize for PolicyRef {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        if let Ok(p) = Policy::from_value(v) {
            return Ok(PolicyRef(p));
        }
        if let Value::Str(s) = v {
            if let Some(p) = Policy::from_label(s) {
                return Ok(PolicyRef(p));
            }
        }
        Err(de::Error::expected(
            "a policy variant or label (PTB, PTB+StSAP, baseline[14], time-serial, ANN, event-driven)",
            v,
        ))
    }
}

/// Body of `POST /simulate`: one network under one policy at one TW.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct SimulateRequest {
    /// Target network (name or inline spec).
    pub network: NetworkRef,
    /// Scheduling policy.
    pub policy: PolicyRef,
    /// Time-window size.
    pub tw: u32,
    /// Run at reduced fidelity (cropped feature maps, shortened
    /// period — `RunOptions::quick`). Defaults to `false`.
    pub quick: Option<bool>,
    /// RNG seed for the synthetic activity. Defaults to 42 (the
    /// harness default).
    pub seed: Option<u64>,
    /// Per-request deadline in milliseconds, measured from when the
    /// connection was enqueued. Overrides the server's `PTB_DEADLINE_MS`
    /// for this request; expiry answers `503` with `Retry-After`.
    pub deadline_ms: Option<u64>,
    /// Audit level for this run: `"off"`, `"sample"`, or `"full"`
    /// (case-insensitive). Overrides the server's `PTB_VERIFY` default;
    /// anything else answers `422`. A run whose audit finds a
    /// divergence answers `500` with the findings instead of the
    /// (untrustworthy) report.
    pub verify: Option<String>,
}

/// Body of `POST /sweep`: one network and policy over a range of TWs,
/// sharded across the worker pool.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct SweepRequest {
    /// Target network (name or inline spec).
    pub network: NetworkRef,
    /// Scheduling policy.
    pub policy: PolicyRef,
    /// Time-window sizes to sweep, in the order rows should appear.
    pub tws: Vec<u32>,
    /// Reduced-fidelity flag, as in [`SimulateRequest::quick`].
    pub quick: Option<bool>,
    /// RNG seed, as in [`SimulateRequest::seed`].
    pub seed: Option<u64>,
    /// Run asynchronously: respond immediately with a job id to poll at
    /// `GET /jobs/{id}` instead of blocking until the sweep completes.
    /// Defaults to `false`.
    pub background: Option<bool>,
    /// Per-request deadline in milliseconds, as in
    /// [`SimulateRequest::deadline_ms`]. Synchronous sweeps that miss it
    /// answer `503`; background sweeps ignore it past submission.
    pub deadline_ms: Option<u64>,
    /// Audit level, as in [`SimulateRequest::verify`]. A sweep shard
    /// whose audit finds a divergence fails the whole job; the findings
    /// appear in the job's `audit` object at `GET /jobs/{id}`.
    pub verify: Option<String>,
    /// The dispatching coordinator's leadership epoch, carried on
    /// every cluster shard dispatch. A worker remembers the highest
    /// epoch it has seen and answers `409` to anything lower — zombie
    /// fencing, see `docs/PROTOCOL.md` §7. Direct clients leave it
    /// unset and are never fenced.
    pub epoch: Option<u64>,
}

/// A validation failure; maps to `422 Unprocessable Content`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The TW bounds `SimInputs::hpca22` asserts: the paper's architecture
/// runs TW in `1..=64` and never beyond its 96 p-sum slots. Checked
/// here so the service answers 422 instead of panicking a worker.
pub fn validate_tw(tw: u32) -> Result<(), ValidationError> {
    let slots = systolic_sim::ArchConfig::hpca22().psum_slots();
    if !(1..=64).contains(&tw) || u64::from(tw) > slots {
        return Err(ValidationError(format!(
            "tw must be in 1..=64 and at most the {slots} p-sum slots, got {tw}"
        )));
    }
    Ok(())
}

/// Resolves a [`NetworkRef`] into a validated spec.
///
/// Named networks are trusted (they come from `spikegen`'s
/// constructors). Inline specs are re-validated invariant by invariant:
/// serde derives bypass `FiringProfile::new` / `ConvShape::with_padding`,
/// so every layer is round-tripped through those constructors and must
/// reproduce itself exactly.
pub fn resolve_network(net: &NetworkRef) -> Result<NetworkSpec, ValidationError> {
    match net {
        NetworkRef::Name(name) => spikegen::network_by_name(name).ok_or_else(|| {
            ValidationError(format!(
                "unknown network {name:?}; built-ins: DVS-Gesture, CIFAR10-DVS, AlexNet, CIFAR10"
            ))
        }),
        NetworkRef::Inline(spec) => {
            if spec.layers.is_empty() || spec.layers.len() > MAX_LAYERS {
                return Err(ValidationError(format!(
                    "inline spec must have 1..={MAX_LAYERS} layers, got {}",
                    spec.layers.len()
                )));
            }
            if spec.timesteps == 0 || spec.timesteps > MAX_TIMESTEPS {
                return Err(ValidationError(format!(
                    "timesteps must be in 1..={MAX_TIMESTEPS}, got {}",
                    spec.timesteps
                )));
            }
            for layer in &spec.layers {
                let p = &layer.input_profile;
                let rebuilt = spikegen::FiringProfile::new(
                    p.silent_fraction(),
                    p.mean_rate(),
                    p.dispersion(),
                    p.temporal(),
                )
                .map_err(|e| {
                    ValidationError(format!("layer {:?}: invalid profile: {e}", layer.name))
                })?;
                if rebuilt != *p {
                    return Err(ValidationError(format!(
                        "layer {:?}: profile does not round-trip its constructor",
                        layer.name
                    )));
                }
                let s = layer.shape;
                let rebuilt = snn_core::shape::ConvShape::with_padding(
                    s.ifmap_side(),
                    s.filter_side(),
                    s.in_channels(),
                    s.out_channels(),
                    s.stride(),
                    s.padding(),
                )
                .map_err(|e| {
                    ValidationError(format!("layer {:?}: invalid shape: {e}", layer.name))
                })?;
                if rebuilt != s {
                    return Err(ValidationError(format!(
                        "layer {:?}: shape does not round-trip its constructor",
                        layer.name
                    )));
                }
            }
            Ok(spec.clone())
        }
    }
}

/// Resolves a request's `verify` field into an [`AuditLevel`]: absent
/// means the server default (its `PTB_VERIFY`), an unparseable value is
/// a 422 — a caller asking for verification must not silently get none.
pub fn validate_verify(
    verify: Option<&str>,
    default: AuditLevel,
) -> Result<AuditLevel, ValidationError> {
    match verify {
        None => Ok(default),
        Some(s) => AuditLevel::parse(s).ok_or_else(|| {
            ValidationError(format!("verify must be off, sample, or full, got {s:?}"))
        }),
    }
}

/// Validates a sweep's TW list: non-empty, bounded, each TW valid.
pub fn validate_tws(tws: &[u32]) -> Result<(), ValidationError> {
    if tws.is_empty() {
        return Err(ValidationError("tws must be non-empty".into()));
    }
    if tws.len() > 64 {
        return Err(ValidationError(format!(
            "tws must have at most 64 entries, got {}",
            tws.len()
        )));
    }
    for &tw in tws {
        validate_tw(tw)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_request_parses_names_labels_and_options() {
        let r: SimulateRequest = serde_json::from_str(
            r#"{"network": "DVS-Gesture", "policy": "PTB+StSAP", "tw": 8, "quick": true}"#,
        )
        .unwrap();
        assert_eq!(r.network, NetworkRef::Name("DVS-Gesture".into()));
        assert_eq!(r.policy.0, Policy::ptb_with_stsap());
        assert_eq!((r.tw, r.quick, r.seed), (8, Some(true), None));

        // Serde-form policies parse too.
        let r: SimulateRequest = serde_json::from_str(
            r#"{"network": "AlexNet", "policy": {"Ptb": {"stsap": false}}, "tw": 4}"#,
        )
        .unwrap();
        assert_eq!(r.policy.0, Policy::ptb());

        assert!(serde_json::from_str::<SimulateRequest>(
            r#"{"network": "AlexNet", "policy": "warp-speed", "tw": 4}"#
        )
        .is_err());
    }

    #[test]
    fn inline_specs_parse_and_validate() {
        let spec = spikegen::dvs_gesture();
        let json = format!(
            r#"{{"network": {}, "policy": "ANN", "tw": 1}}"#,
            serde_json::to_string(&spec).unwrap()
        );
        let r: SimulateRequest = serde_json::from_str(&json).unwrap();
        let resolved = resolve_network(&r.network).unwrap();
        assert_eq!(resolved, spec);
    }

    #[test]
    fn invalid_inline_specs_are_rejected() {
        let mut spec = spikegen::dvs_gesture();
        spec.timesteps = 0;
        assert!(resolve_network(&NetworkRef::Inline(spec)).is_err());

        let mut spec = spikegen::dvs_gesture();
        spec.layers.clear();
        assert!(resolve_network(&NetworkRef::Inline(spec)).is_err());

        // A profile smuggling an invalid rate past the constructor.
        let spec = spikegen::dvs_gesture();
        let json = serde_json::to_string(&spec)
            .unwrap()
            .replace("\"mean_rate\":0.04", "\"mean_rate\":-3.0");
        let smuggled: NetworkSpec = serde_json::from_str(&json).unwrap();
        assert_ne!(smuggled, spec, "the rate edit must have landed");
        assert!(resolve_network(&NetworkRef::Inline(smuggled)).is_err());
    }

    #[test]
    fn verify_levels_parse_with_the_server_default_as_fallback() {
        let r: SimulateRequest = serde_json::from_str(
            r#"{"network": "DVS-Gesture", "policy": "PTB", "tw": 8, "verify": "full"}"#,
        )
        .unwrap();
        assert_eq!(r.verify.as_deref(), Some("full"));
        assert_eq!(
            validate_verify(r.verify.as_deref(), AuditLevel::Off),
            Ok(AuditLevel::Full)
        );
        assert_eq!(
            validate_verify(None, AuditLevel::Sample),
            Ok(AuditLevel::Sample),
            "absent field falls back to the server default"
        );
        assert_eq!(
            validate_verify(Some("SAMPLE"), AuditLevel::Off),
            Ok(AuditLevel::Sample),
            "case-insensitive"
        );
        assert!(validate_verify(Some("paranoid"), AuditLevel::Off).is_err());
    }

    #[test]
    fn unknown_names_and_bad_tws_are_rejected() {
        assert!(resolve_network(&NetworkRef::Name("NoSuchNet".into())).is_err());
        assert!(resolve_network(&NetworkRef::Name("dvs-gesture".into())).is_ok());
        assert!(validate_tw(0).is_err());
        assert!(validate_tw(65).is_err());
        assert!(validate_tw(64).is_ok());
        assert!(validate_tws(&[]).is_err());
        assert!(validate_tws(&[1, 8, 64]).is_ok());
    }
}

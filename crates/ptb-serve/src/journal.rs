//! Durable job journal: crash-safe persistence of background sweep
//! jobs across daemon restarts.
//!
//! Each background `/sweep` job gets one append-only file under the
//! journal directory (`PTB_JOB_DIR`, default `results/.jobs/`):
//!
//! ```text
//! job-<id-hex>.ptbj :=  MAGIC  record*
//! record            :=  [payload len: u32 LE] [FNV-1a64(payload): u64 LE] [payload]
//! payload           :=  JSON, one of:
//!   {"type":"submit","id":N,"network":{...},"policy":"LABEL","tws":[...],"quick":B,"seed":N,"verify":"LEVEL"}
//!   {"type":"shard","index":I,"row":{"tw":..,"energy_j":..,"seconds":..,"edp":..}}
//!   {"type":"dispatch","index":I,"worker":"HOST:PORT","epoch":E}
//!   {"type":"done"}
//! ```
//!
//! `"verify"` records the job's audit level so a resumed job keeps
//! verifying at the level it was submitted with; journals written
//! before the field existed replay as `off`.
//!
//! `"dispatch"` records are written by the *cluster coordinator* only
//! (`ptb-cluster`): they journal which worker each shard was sent to
//! and under which leadership epoch (see `docs/PROTOCOL.md` §7), so a
//! restarted or newly promoted coordinator resumes its dispatch map
//! alongside the completed rows. Worker daemons never write them, and
//! replay treats them as advisory — a shard with a dispatch record but
//! no row simply re-dispatches. When one shard carries several
//! dispatch records (re-dispatch after a worker death, or a failover
//! re-placing an old epoch's in-flight shards), replay resolves them
//! to one entry per shard: the highest epoch wins, and within an epoch
//! the latest record wins — so old-epoch dispatches superseded by a
//! new coordinator never resurrect. Records without an epoch field
//! (pre-HA journals) resolve as epoch 0.
//!
//! Beside the job files, the coordinator persists its leadership epoch
//! in a one-line `epoch` text file ([`read_epoch`] / [`write_epoch`]),
//! and standbys mirror journal bytes through the byte-offset helpers
//! ([`JobJournal::tail_index`], [`JobJournal::read_from`],
//! [`JobJournal::append_raw`]) serving `GET /journal/tail`.
//!
//! The discipline mirrors the disk `ActivityCache`: every record
//! carries its own FNV-1a checksum, appends are single `write` calls
//! behind a lock (so records never interleave), and the
//! recovery rewrite goes through a temp file + atomic rename. A job's
//! rows are pure functions of its submit record, so the journal never
//! needs fsync-grade durability to be *correct* — a lost tail record
//! merely re-runs a shard on replay, bit-identically.
//!
//! ## Replay
//!
//! [`JobJournal::replay`] scans the directory at boot:
//!
//! * A file whose records all verify replays fully: a `done` job is
//!   re-registered complete (rows served straight from the journal); an
//!   unfinished one is resumed with only its *unjournaled* shards left
//!   to run.
//! * A torn tail or bit flip is detected by length/checksum framing.
//!   If the submit record (and any prefix of shard records) survives,
//!   the file is quarantined to `.bad`, the valid prefix is rewritten
//!   atomically, and the job resumes from it (`recovered` counter).
//!   If even the submit record is unreadable, the file is quarantined
//!   and skipped (`discarded` counter). Replay never panics on any
//!   byte sequence (property-tested by `tests/journal_corruption.rs`).
//! * Submit records are re-validated through the same constructors as
//!   wire requests ([`crate::api::resolve_network`]), so a tampered
//!   journal cannot smuggle an invariant-violating spec into a worker.
//!
//! Failpoints `journal_append` and `journal_replay` inject faults at
//! the obvious places (see `ptb_bench::failpoint`), and
//! `journal_replay_flip` flips the low mantissa bit of every replayed
//! row's `energy_j` *after* the checksum verified — undetectable by
//! framing, there to prove the audit layer's replayed-row
//! recomputation (`AuditError::RowMismatch`) catches what checksums
//! cannot (see `crate::jobs`).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ptb_accel::audit::AuditLevel;
use ptb_accel::config::Policy;
use ptb_bench::cache::fnv1a;
use ptb_bench::sync::lock_recover;
use ptb_bench::SweepRow;
use spikegen::NetworkSpec;

use crate::api;

/// File-format magic + version prefix. Bump the digit on any change:
/// stale files then fail the prefix check and are quarantined.
const JOURNAL_MAGIC: &[u8; 8] = b"PTBJNL1\n";

/// Parses the job id out of a `job-<id-hex>.ptbj` file name; `None`
/// for anything else (quarantine files, temp files, foreign files).
fn journal_file_id(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("job-")?.strip_suffix(".ptbj")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Counter snapshot describing what the journal has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Records successfully appended.
    pub appends: u64,
    /// Append attempts that failed (I/O error or injected fault);
    /// the job keeps running, it just loses durability for that record.
    pub append_errors: u64,
    /// Files that lost their tail to corruption but had a valid prefix
    /// salvaged and rewritten at replay.
    pub recovered: u64,
    /// Files quarantined wholesale at replay (no usable submit record).
    pub discarded: u64,
    /// Jobs replayed as already complete (rows served from disk).
    pub reloaded_jobs: u64,
    /// Unfinished jobs re-registered for resumption at replay.
    pub resumed_jobs: u64,
    /// Completed shard rows reloaded from disk instead of recomputed.
    pub replayed_shards: u64,
    /// Files reclaimed by retention GC: expired job journals, aged-out
    /// `.bad` quarantine files, stale temp files, and disk-quota
    /// victims.
    pub gc_removed: u64,
    /// Last observed size of the journal directory in bytes (gauge,
    /// refreshed by every GC pass).
    pub dir_bytes: u64,
}

/// One job reconstructed from its journal file by [`JobJournal::replay`].
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// The job's original id (clients keep polling the same URL).
    pub id: u64,
    /// Validated target network.
    pub spec: NetworkSpec,
    /// Scheduling policy.
    pub policy: Policy,
    /// TW points in requested order.
    pub tws: Vec<u32>,
    /// Reduced-fidelity flag of the original request.
    pub quick: bool,
    /// RNG seed of the original request.
    pub seed: u64,
    /// Audit level of the original request (`off` when the journal
    /// predates the field).
    pub verify: AuditLevel,
    /// Journaled shard completions, `(original index, row)`.
    pub shards: Vec<(usize, SweepRow)>,
    /// Journaled coordinator dispatches, resolved to one entry per
    /// dispatched shard — `(shard index, worker addr)`, sorted by
    /// index. Across epochs the highest epoch wins; within an epoch
    /// the latest record wins. Empty for worker-written journals.
    pub dispatches: Vec<(usize, String)>,
    /// Whether a `done` record closed the job (with every shard
    /// present); `false` means the job must resume.
    pub done: bool,
}

/// The durable job journal: one append-only checksummed file per
/// background sweep job. See the module docs for format and replay
/// semantics.
#[derive(Debug)]
pub struct JobJournal {
    dir: PathBuf,
    /// Serializes appends so concurrent shard completions of one job
    /// never interleave record bytes.
    append_lock: Mutex<()>,
    appends: AtomicU64,
    append_errors: AtomicU64,
    recovered: AtomicU64,
    discarded: AtomicU64,
    reloaded_jobs: AtomicU64,
    resumed_jobs: AtomicU64,
    replayed_shards: AtomicU64,
    gc_removed: AtomicU64,
    dir_bytes: AtomicU64,
}

impl JobJournal {
    /// A journal rooted at `dir` (created lazily on first write).
    pub fn new(dir: &Path) -> Self {
        JobJournal {
            dir: dir.to_path_buf(),
            append_lock: Mutex::new(()),
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            reloaded_jobs: AtomicU64::new(0),
            resumed_jobs: AtomicU64::new(0),
            replayed_shards: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
            dir_bytes: AtomicU64::new(0),
        }
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters so far.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appends: self.appends.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            reloaded_jobs: self.reloaded_jobs.load(Ordering::Relaxed),
            resumed_jobs: self.resumed_jobs.load(Ordering::Relaxed),
            replayed_shards: self.replayed_shards.load(Ordering::Relaxed),
            gc_removed: self.gc_removed.load(Ordering::Relaxed),
            dir_bytes: self.dir_bytes.load(Ordering::Relaxed),
        }
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id:016x}.ptbj"))
    }

    /// Deletes job `id`'s journal file (called when retention expires
    /// the job). Best-effort: a missing file is fine.
    pub fn remove(&self, id: u64) {
        if std::fs::remove_file(self.path(id)).is_ok() {
            self.gc_removed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Last observed journal-directory size in bytes (refreshed by
    /// every [`Self::gc`] pass).
    pub fn dir_bytes(&self) -> u64 {
        self.dir_bytes.load(Ordering::Relaxed)
    }

    /// One retention-GC pass over the journal directory:
    ///
    /// * `.bad` quarantine files older than `retain` are deleted — a
    ///   bit-flipping disk quarantines on every replay, and nothing
    ///   ever reads a `.bad` file back, so they must age out.
    /// * Stale temp files (crashed rewrites, older than a minute) are
    ///   deleted.
    /// * When `budget` is set and the directory still exceeds it, job
    ///   journals whose id the caller declares `expendable` (expired or
    ///   terminal — never a running job's) are deleted oldest-first,
    ///   then remaining `.bad` files regardless of age.
    ///
    /// Refreshes the [`Self::dir_bytes`] gauge. Everything is
    /// best-effort: GC losing a race with a writer just means the next
    /// pass picks it up.
    pub fn gc(&self, retain: Duration, budget: Option<u64>, expendable: &dyn Fn(u64) -> bool) {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let now = std::time::SystemTime::now();
        let mut total = 0u64;
        // (path, len, mtime, victim priority): 0 = expendable journal,
        // 1 = young .bad file — only sacrificed to the byte budget.
        let mut victims: Vec<(PathBuf, u64, std::time::SystemTime, u8)> = Vec::new();
        for item in read.flatten() {
            let path = item.path();
            let name = item.file_name();
            let name = name.to_string_lossy().into_owned();
            let Ok(meta) = item.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(now);
            let age = now.duration_since(mtime).unwrap_or_default();
            if name.contains(".tmp.") {
                if age.as_secs() >= 60 && std::fs::remove_file(&path).is_ok() {
                    self.gc_removed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                total += meta.len();
                continue;
            }
            if name.ends_with(".bad") {
                if age >= retain && std::fs::remove_file(&path).is_ok() {
                    self.gc_removed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                total += meta.len();
                victims.push((path, meta.len(), mtime, 1));
                continue;
            }
            total += meta.len();
            if let Some(id) = journal_file_id(&name) {
                if expendable(id) {
                    victims.push((path, meta.len(), mtime, 0));
                }
            }
        }
        if let Some(budget) = budget {
            victims.sort_by_key(|(_, _, mtime, prio)| (*prio, *mtime));
            for (path, len, _, _) in victims {
                if total <= budget {
                    break;
                }
                if std::fs::remove_file(&path).is_ok() {
                    total -= len;
                    self.gc_removed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.dir_bytes.store(total, Ordering::Relaxed);
    }

    /// Journals a job submission, creating (or truncating) its file.
    /// Must be called before any [`Self::log_shard`] for `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn log_submit(
        &self,
        id: u64,
        spec: &NetworkSpec,
        policy: Policy,
        tws: &[u32],
        quick: bool,
        seed: u64,
        verify: AuditLevel,
    ) {
        let network = match serde_json::to_string(spec) {
            Ok(j) => j,
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let payload = format!(
            "{{\"type\":\"submit\",\"id\":{id},\"network\":{network},\
             \"policy\":{},\"tws\":{tws:?},\"quick\":{quick},\"seed\":{seed},\
             \"verify\":\"{}\"}}",
            serde_json::to_string(policy.label()).expect("string serialization"),
            verify.label(),
        );
        self.write_record(id, &payload, true);
    }

    /// Journals one completed shard of job `id`.
    pub fn log_shard(&self, id: u64, index: usize, row: &SweepRow) {
        let row_json = match serde_json::to_string(row) {
            Ok(j) => j,
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let payload = format!("{{\"type\":\"shard\",\"index\":{index},\"row\":{row_json}}}");
        self.write_record(id, &payload, false);
    }

    /// Journals job `id`'s completion (every shard row is on disk).
    pub fn log_done(&self, id: u64) {
        self.write_record(id, "{\"type\":\"done\"}", false);
    }

    /// Journals that shard `index` of job `id` was dispatched to
    /// `worker` under leadership `epoch` (coordinator-only; see the
    /// module docs).
    pub fn log_dispatch(&self, id: u64, index: usize, worker: &str, epoch: u64) {
        let worker_json = serde_json::to_string(worker).expect("string serialization");
        let payload = format!(
            "{{\"type\":\"dispatch\",\"index\":{index},\"worker\":{worker_json},\"epoch\":{epoch}}}"
        );
        self.write_record(id, &payload, false);
    }

    /// Frames `payload` and appends it to the job file in one write.
    /// Failures are counted and reported, never propagated: the journal
    /// is a durability layer, not a correctness dependency.
    fn write_record(&self, id: u64, payload: &str, fresh: bool) {
        let path = self.path(id);
        let result = (|| -> std::io::Result<()> {
            if ptb_bench::failpoint!("journal_append").is_err() {
                return Err(std::io::Error::other("failpoint journal_append"));
            }
            std::fs::create_dir_all(&self.dir)?;
            let _serialized = lock_recover(&self.append_lock);
            let mut file = if fresh {
                let mut f = std::fs::File::create(&path)?;
                f.write_all(JOURNAL_MAGIC)?;
                f
            } else {
                std::fs::OpenOptions::new().append(true).open(&path)?
            };
            file.write_all(&frame_record(payload.as_bytes()))?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("warning: journal append to {} failed: {e}", path.display());
            }
        }
    }

    /// Scans the journal directory and reconstructs every job it can,
    /// quarantining anything corrupt. Never panics; see module docs.
    pub fn replay(&self) -> Vec<ReplayedJob> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new(); // no directory yet: nothing journaled
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == "ptbj")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("job-"))
            })
            .collect();
        paths.sort(); // deterministic replay order
        let mut jobs = Vec::new();
        for path in paths {
            if let Some(job) = self.replay_file(&path) {
                if job.done {
                    self.reloaded_jobs.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.resumed_jobs.fetch_add(1, Ordering::Relaxed);
                }
                self.replayed_shards
                    .fetch_add(job.shards.len() as u64, Ordering::Relaxed);
                jobs.push(job);
            }
        }
        jobs
    }

    /// Replays one file; `None` means it was quarantined as unusable.
    fn replay_file(&self, path: &Path) -> Option<ReplayedJob> {
        let readable = ptb_bench::failpoint!("journal_replay").is_ok();
        let bytes = if readable {
            std::fs::read(path).unwrap_or_default()
        } else {
            Vec::new() // injected fault: file reads as empty
        };
        let (records, clean) = parse_records(&bytes);
        let Some(job) = interpret_records(&records) else {
            // No usable submit record: quarantine the whole file.
            self.quarantine(path);
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // `interpret_records` may have consumed fewer records than the
        // framing yielded (semantically bad tail): that also counts as
        // corruption to salvage away.
        let salvageable = job.valid_records;
        if !clean || salvageable < records.len() {
            self.quarantine(path);
            if self.rewrite(path, &records[..salvageable]).is_err() {
                // Could not persist the salvage; the job still resumes
                // this boot, it just lost its journaled prefix on disk.
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
            self.recovered.fetch_add(1, Ordering::Relaxed);
        }
        Some(job.job)
    }

    /// Renames `path` to `path.bad` (best-effort).
    fn quarantine(&self, path: &Path) {
        let mut bad = path.as_os_str().to_owned();
        bad.push(".bad");
        if let Err(e) = std::fs::rename(path, &bad) {
            eprintln!("warning: could not quarantine {}: {e}", path.display());
        }
    }

    /// Atomically rewrites `path` with the given record payloads
    /// (temp file + rename, matching the disk cache's discipline).
    fn rewrite(&self, path: &Path, records: &[Vec<u8>]) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(
            JOURNAL_MAGIC.len() + records.iter().map(|r| r.len() + 12).sum::<usize>(),
        );
        out.extend_from_slice(JOURNAL_MAGIC);
        for payload in records {
            out.extend_from_slice(&frame_record(payload));
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }

    /// Lists every job journal as `(id, bytes on disk)`, sorted by id —
    /// the index a coordinator serves at `GET /journal/tail` so a
    /// standby can see which journals grew past its local mirror.
    pub fn tail_index(&self) -> Vec<(u64, u64)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut index: Vec<(u64, u64)> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let id = journal_file_id(e.file_name().to_str()?)?;
                let len = e.metadata().ok()?.len();
                Some((id, len))
            })
            .collect();
        index.sort_unstable();
        index
    }

    /// Size of job `id`'s journal file in bytes (0 when absent) — the
    /// cursor a standby resumes tailing from.
    pub fn file_len(&self, id: u64) -> u64 {
        std::fs::metadata(self.path(id))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Raw journal bytes of job `id` from byte offset `from` — the
    /// cursor form of `GET /journal/tail`. Because journal files are
    /// append-only, any prefix a standby already holds stays valid;
    /// only the bytes past its cursor are fetched. Reading past EOF
    /// returns empty.
    pub fn read_from(&self, id: u64, from: u64) -> std::io::Result<Vec<u8>> {
        let bytes = std::fs::read(self.path(id))?;
        let from = usize::try_from(from).unwrap_or(usize::MAX);
        Ok(bytes.get(from..).unwrap_or_default().to_vec())
    }

    /// Appends raw tailed bytes to job `id`'s local mirror, verifying
    /// the file currently ends at byte `at` (the cursor the bytes were
    /// fetched from). `at == 0` (re)creates the file — the bytes then
    /// start with the magic, fetched from offset 0. A cursor mismatch
    /// (the mirror changed underfoot, or the source was salvaged and
    /// shrank) is an error; the caller refetches from 0.
    pub fn append_raw(&self, id: u64, at: u64, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let _serialized = lock_recover(&self.append_lock);
        let path = self.path(id);
        if at == 0 {
            return std::fs::write(path, bytes);
        }
        let current = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if current != at {
            return Err(std::io::Error::other(format!(
                "tail cursor mismatch for job {id}: local mirror is {current} bytes, \
                 fetched from {at}"
            )));
        }
        let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
        file.write_all(bytes)
    }
}

/// Reads the persisted leadership epoch from `dir/epoch` (one decimal
/// line). Absent or unparseable reads as 0 — a fresh coordinator then
/// starts at epoch 1.
pub fn read_epoch(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join("epoch"))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persists the leadership epoch to `dir/epoch` via temp file + atomic
/// rename, the same discipline as journal rewrites. A coordinator must
/// persist its epoch *before* dispatching anything under it, so a
/// crash can never resurrect a lower epoch.
pub fn write_epoch(dir: &Path, epoch: u64) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("epoch.tmp.{}", std::process::id()));
    std::fs::write(&tmp, format!("{epoch}\n"))?;
    std::fs::rename(&tmp, dir.join("epoch"))
}

/// Frames one record: `[len u32 LE][fnv1a u64 LE][payload]`.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("short record")
            .to_le_bytes(),
    );
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits `bytes` into verified record payloads. Returns the payloads
/// and whether the whole file parsed cleanly (`false` = torn or
/// corrupt tail after the returned prefix).
fn parse_records(bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let Some(mut rest) = bytes.strip_prefix(JOURNAL_MAGIC.as_slice()) else {
        return (Vec::new(), bytes.is_empty());
    };
    let mut records = Vec::new();
    while !rest.is_empty() {
        let Some((header, after)) = rest.split_at_checked(12) else {
            return (records, false);
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        let Some((payload, after)) = after.split_at_checked(len) else {
            return (records, false);
        };
        if fnv1a(payload) != sum {
            return (records, false);
        }
        records.push(payload.to_vec());
        rest = after;
    }
    (records, true)
}

/// A replayed job plus how many leading records were semantically valid
/// (framing-valid records past a semantic error are salvaged away).
struct Interpreted {
    job: ReplayedJob,
    valid_records: usize,
}

/// Interprets verified record payloads into a job. `None` when the
/// submit record is missing or invalid (file is unusable).
fn interpret_records(records: &[Vec<u8>]) -> Option<Interpreted> {
    let submit: serde_json::Value = parse_json(records.first()?)?;
    if submit.get("type")?.as_str()? != "submit" {
        return None;
    }
    let id = submit.get("id")?.as_u64()?;
    let spec: NetworkSpec = serde_json::from_value(submit.get("network")?).ok()?;
    // Same validation as wire requests: constructors must round-trip.
    let spec = api::resolve_network(&api::NetworkRef::Inline(spec)).ok()?;
    let policy = Policy::from_label(submit.get("policy")?.as_str()?)?;
    let tws: Vec<u32> = serde_json::from_value(submit.get("tws")?).ok()?;
    api::validate_tws(&tws).ok()?;
    let quick = submit.get("quick")?.as_bool()?;
    let seed = submit.get("seed")?.as_u64()?;
    // Optional: journals written before the audit layer existed carry
    // no verify field and replay unverified, exactly as they ran.
    let verify = submit
        .get("verify")
        .and_then(|v| v.as_str())
        .and_then(AuditLevel::parse)
        .unwrap_or(AuditLevel::Off);

    let mut shards: Vec<(usize, SweepRow)> = Vec::new();
    // Raw dispatch entries in append order, `(index, worker, epoch)`;
    // resolved to one winner per index below.
    let mut dispatches: Vec<(usize, String, u64)> = Vec::new();
    let mut done = false;
    let mut valid_records = 1;
    for payload in &records[1..] {
        let Some(record) = parse_json(payload) else {
            break;
        };
        match record.get("type").and_then(|t| t.as_str()) {
            Some("shard") => {
                let parsed = (|| {
                    let index = record.get("index")?.as_u64()? as usize;
                    let row: SweepRow = serde_json::from_value(record.get("row")?).ok()?;
                    (index < tws.len() && row.tw == tws[index]).then_some((index, row))
                })();
                let Some((index, mut row)) = parsed else {
                    break;
                };
                // Silent-corruption injection: flip one mantissa bit
                // *after* the checksum verified. Framing cannot see it;
                // only the audit layer's recomputation can.
                if ptb_bench::failpoint!("journal_replay_flip").is_err() {
                    row.energy_j = f64::from_bits(row.energy_j.to_bits() ^ 1);
                }
                if !shards.iter().any(|(i, _)| *i == index) {
                    shards.push((index, row));
                }
            }
            Some("dispatch") => {
                let parsed = (|| {
                    let index = record.get("index")?.as_u64()? as usize;
                    let worker = record.get("worker")?.as_str()?.to_string();
                    // Pre-HA journals carry no epoch: resolve as 0 so
                    // any epoch-stamped re-dispatch supersedes them.
                    let epoch = record.get("epoch").and_then(|e| e.as_u64()).unwrap_or(0);
                    (index < tws.len()).then_some((index, worker, epoch))
                })();
                let Some(entry) = parsed else {
                    break;
                };
                dispatches.push(entry);
            }
            Some("done") => done = true,
            _ => break,
        }
        valid_records += 1;
    }
    // A `done` marker only counts with every shard present; otherwise
    // the job resumes (and re-finishes) from what survived.
    if shards.len() != tws.len() {
        done = false;
    }
    Some(Interpreted {
        job: ReplayedJob {
            id,
            spec,
            policy,
            tws,
            quick,
            seed,
            verify,
            shards,
            dispatches: resolve_dispatches(dispatches),
            done,
        },
        valid_records,
    })
}

/// Resolves raw dispatch entries (append order) to exactly one winner
/// per shard index: the highest epoch wins, and within an epoch the
/// latest record wins. The result is sorted by index, which together
/// with the epoch rule makes the resolution independent of record
/// order whenever epochs differ — an old-epoch dispatch can never
/// shadow a new-epoch re-dispatch no matter how the records interleave
/// on disk (property-tested below).
fn resolve_dispatches(raw: Vec<(usize, String, u64)>) -> Vec<(usize, String)> {
    let mut best: Vec<(usize, String, u64)> = Vec::new();
    for (index, worker, epoch) in raw {
        match best.iter_mut().find(|(i, _, _)| *i == index) {
            // `>=`: within one epoch the later record supersedes (a
            // re-dispatch after a worker death).
            Some(entry) if epoch >= entry.2 => *entry = (index, worker, epoch),
            Some(_) => {}
            None => best.push((index, worker, epoch)),
        }
    }
    best.sort_by_key(|(i, _, _)| *i);
    best.into_iter().map(|(i, w, _)| (i, w)).collect()
}

/// UTF-8 + JSON parse of one payload, `None` on any failure.
fn parse_json(payload: &[u8]) -> Option<serde_json::Value> {
    serde_json::from_str(std::str::from_utf8(payload).ok()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ptb-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn row(tw: u32, x: f64) -> SweepRow {
        SweepRow {
            tw,
            energy_j: x,
            seconds: x * 0.5,
            edp: x * x * 0.5,
        }
    }

    #[test]
    fn submit_shards_done_roundtrip_through_replay() {
        let dir = tmp_dir("roundtrip");
        let journal = JobJournal::new(&dir);
        let spec = spikegen::dvs_gesture();
        let tws = vec![1u32, 4, 8];
        journal.log_submit(3, &spec, Policy::ptb(), &tws, true, 42, AuditLevel::Sample);
        journal.log_shard(3, 1, &row(4, 1.25));
        journal.log_shard(3, 0, &row(1, 2.5));

        let fresh = JobJournal::new(&dir);
        let jobs = fresh.replay();
        assert_eq!(jobs.len(), 1);
        let job = &jobs[0];
        assert_eq!((job.id, job.quick, job.seed), (3, true, 42));
        assert_eq!(job.verify, AuditLevel::Sample, "verify level round-trips");
        assert_eq!(job.spec, spec);
        assert_eq!(job.policy, Policy::ptb());
        assert_eq!(job.tws, tws);
        assert!(!job.done, "no done record: job must resume");
        assert_eq!(job.shards, vec![(1, row(4, 1.25)), (0, row(1, 2.5))]);
        let stats = fresh.stats();
        assert_eq!((stats.recovered, stats.discarded), (0, 0));
        assert_eq!((stats.resumed_jobs, stats.replayed_shards), (1, 2));

        // Completing the job flips replay to a reload.
        journal.log_shard(3, 2, &row(8, 0.5));
        journal.log_done(3);
        let done = JobJournal::new(&dir);
        let jobs = done.replay();
        assert!(jobs[0].done);
        assert_eq!(done.stats().reloaded_jobs, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_salvaged_and_quarantined() {
        let dir = tmp_dir("torn");
        let journal = JobJournal::new(&dir);
        let spec = spikegen::dvs_gesture();
        journal.log_submit(1, &spec, Policy::ptb(), &[1, 4], true, 7, AuditLevel::Off);
        journal.log_shard(1, 0, &row(1, 2.0));
        let path = journal.path(1);
        let bytes = std::fs::read(&path).unwrap();
        // Tear the last record in half.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let fresh = JobJournal::new(&dir);
        let jobs = fresh.replay();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].shards.is_empty(), "torn shard must not replay");
        assert!(!jobs[0].done);
        let stats = fresh.stats();
        assert_eq!((stats.recovered, stats.discarded), (1, 0));
        let bad: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "bad"))
            .collect();
        assert_eq!(bad.len(), 1, "original must be quarantined");

        // The rewritten file is clean: a second replay recovers nothing.
        let again = JobJournal::new(&dir);
        let jobs = again.replay();
        assert_eq!(jobs.len(), 1);
        assert_eq!(again.stats().recovered, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_files_are_discarded_not_panicked_on() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("job-00ff.ptbj"), b"not a journal at all").unwrap();
        let journal = JobJournal::new(&dir);
        assert!(journal.replay().is_empty());
        assert_eq!(journal.stats().discarded, 1);
        assert!(dir.join("job-00ff.ptbj.bad").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journals_without_a_verify_field_replay_as_off() {
        // A journal from before the audit layer existed: same framing,
        // no "verify" key in the submit record. It must replay (not be
        // discarded) and come back unverified.
        let dir = tmp_dir("legacy");
        let journal = JobJournal::new(&dir);
        journal.log_submit(
            2,
            &spikegen::dvs_gesture(),
            Policy::ptb(),
            &[1],
            true,
            5,
            AuditLevel::Full,
        );
        let path = journal.path(2);
        let bytes = std::fs::read(&path).unwrap();
        let (records, clean) = parse_records(&bytes);
        assert!(clean);
        let legacy = String::from_utf8(records[0].clone())
            .unwrap()
            .replace(",\"verify\":\"full\"", "");
        assert!(!legacy.contains("verify"), "the field edit must land");
        let mut out = JOURNAL_MAGIC.to_vec();
        out.extend_from_slice(&frame_record(legacy.as_bytes()));
        std::fs::write(&path, out).unwrap();

        let fresh = JobJournal::new(&dir);
        let jobs = fresh.replay();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].verify, AuditLevel::Off);
        assert_eq!(fresh.stats().discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_records_replay_alongside_shards() {
        let dir = tmp_dir("dispatch");
        let journal = JobJournal::new(&dir);
        journal.log_submit(
            5,
            &spikegen::dvs_gesture(),
            Policy::ptb(),
            &[1, 4, 8],
            true,
            11,
            AuditLevel::Off,
        );
        journal.log_dispatch(5, 0, "127.0.0.1:4001", 1);
        journal.log_dispatch(5, 2, "127.0.0.1:4002", 1);
        journal.log_shard(5, 0, &row(1, 2.0));
        // Re-dispatch after a worker death: same epoch, latest wins.
        journal.log_dispatch(5, 2, "127.0.0.1:4001", 1);

        let fresh = JobJournal::new(&dir);
        let jobs = fresh.replay();
        assert_eq!(jobs.len(), 1);
        let job = &jobs[0];
        assert_eq!(job.shards, vec![(0, row(1, 2.0))]);
        assert_eq!(
            job.dispatches,
            vec![
                (0, "127.0.0.1:4001".to_string()),
                (2, "127.0.0.1:4001".to_string()),
            ],
            "one resolved entry per shard; latest same-epoch entry wins"
        );
        assert!(!job.done);
        assert_eq!(fresh.stats().recovered, 0, "dispatch records are clean");

        // An out-of-range dispatch index is semantic corruption: the
        // prefix salvages, the bad tail does not.
        journal.log_dispatch(5, 99, "127.0.0.1:4009", 1);
        let again = JobJournal::new(&dir);
        let jobs = again.replay();
        assert_eq!(jobs[0].dispatches.len(), 2);
        assert_eq!(again.stats().recovered, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatches_without_an_epoch_field_lose_to_stamped_redispatches() {
        // A pre-HA journal line (no epoch key) resolves as epoch 0, so
        // a failover's epoch-stamped re-dispatch supersedes it even
        // when the legacy record comes later in the file.
        let legacy = br#"{"type":"dispatch","index":0,"worker":"127.0.0.1:4001"}"#;
        let stamped = br#"{"type":"dispatch","index":0,"worker":"127.0.0.1:4002","epoch":2}"#;
        let submit = submit_payload(6, &[1, 4]);
        for order in [
            vec![&submit[..], stamped, legacy],
            vec![&submit[..], legacy, stamped],
        ] {
            let records: Vec<Vec<u8>> = order.iter().map(|r| r.to_vec()).collect();
            let job = interpret_records(&records).unwrap().job;
            assert_eq!(job.dispatches, vec![(0, "127.0.0.1:4002".to_string())]);
        }
    }

    /// A framing-valid submit payload for `tws`, built by logging one
    /// and reading it back — so interpretation tests can compose record
    /// sequences by hand.
    fn submit_payload(id: u64, tws: &[u32]) -> Vec<u8> {
        let dir = tmp_dir(&format!("submit-payload-{id}"));
        let journal = JobJournal::new(&dir);
        journal.log_submit(
            id,
            &spikegen::dvs_gesture(),
            Policy::ptb(),
            tws,
            true,
            42,
            AuditLevel::Off,
        );
        let bytes = std::fs::read(journal.path(id)).unwrap();
        let (records, clean) = parse_records(&bytes);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(clean);
        records.into_iter().next().unwrap()
    }

    #[test]
    fn interleaved_multi_epoch_dispatches_resolve_order_independently() {
        // Property test (satellite): shuffle dispatch records from two
        // epochs (old-epoch placements superseded by a promoted
        // coordinator's re-dispatches) together with duplicate shard
        // rows, over many deterministic permutations. Whatever the
        // record order, replay must adopt exactly one row per journaled
        // shard and resolve every dispatched shard to its
        // highest-epoch worker.
        let tws = [1u32, 4, 8, 16];
        let submit = submit_payload(7, &tws);
        let mut tail: Vec<Vec<u8>> = Vec::new();
        for index in 0..tws.len() {
            // Epoch 1: the original placements.
            tail.push(
                format!(
                    "{{\"type\":\"dispatch\",\"index\":{index},\
                     \"worker\":\"127.0.0.1:4001\",\"epoch\":1}}"
                )
                .into_bytes(),
            );
        }
        for index in [1usize, 3] {
            // Epoch 2: the promoted coordinator re-places two shards.
            tail.push(
                format!(
                    "{{\"type\":\"dispatch\",\"index\":{index},\
                     \"worker\":\"127.0.0.1:4002\",\"epoch\":2}}"
                )
                .into_bytes(),
            );
        }
        for index in [0usize, 2] {
            // Rows journaled twice (both coordinators heard the same
            // deterministic result): adoption must dedup to one each.
            let row_json = serde_json::to_string(&row(tws[index], index as f64 + 1.0)).unwrap();
            let payload =
                format!("{{\"type\":\"shard\",\"index\":{index},\"row\":{row_json}}}").into_bytes();
            tail.push(payload.clone());
            tail.push(payload);
        }

        // Deterministic Fisher–Yates over a SplitMix64 stream.
        let mut rng = 0x00DD_5EED_u64;
        for _ in 0..200 {
            let mut shuffled = tail.clone();
            for i in (1..shuffled.len()).rev() {
                let unit = ptb_bench::backoff::splitmix_unit(&mut rng);
                let j = (unit * (i + 1) as f64) as usize;
                shuffled.swap(i, j.min(i));
            }
            let mut records = vec![submit.clone()];
            records.extend(shuffled);
            let job = interpret_records(&records).unwrap().job;

            let mut adopted: Vec<usize> = job.shards.iter().map(|(i, _)| *i).collect();
            adopted.sort_unstable();
            assert_eq!(adopted, vec![0, 2], "exactly one adopted row per shard");
            for (index, row_got) in &job.shards {
                assert_eq!(*row_got, row(tws[*index], *index as f64 + 1.0));
            }
            assert_eq!(
                job.dispatches,
                vec![
                    (0, "127.0.0.1:4001".to_string()),
                    (1, "127.0.0.1:4002".to_string()),
                    (2, "127.0.0.1:4001".to_string()),
                    (3, "127.0.0.1:4002".to_string()),
                ],
                "highest epoch wins for every shard, in any record order"
            );
            assert!(!job.done);
        }
    }

    #[test]
    fn epoch_file_roundtrips_and_defaults_to_zero() {
        let dir = tmp_dir("epoch");
        assert_eq!(read_epoch(&dir), 0, "no directory yet");
        write_epoch(&dir, 3).unwrap();
        assert_eq!(read_epoch(&dir), 3);
        write_epoch(&dir, 4).unwrap();
        assert_eq!(read_epoch(&dir), 4, "monotone rewrites");
        std::fs::write(dir.join("epoch"), b"garbage").unwrap();
        assert_eq!(read_epoch(&dir), 0, "unparseable reads as 0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_helpers_mirror_a_journal_byte_for_byte() {
        let dir = tmp_dir("tail-src");
        let mirror_dir = tmp_dir("tail-dst");
        let source = JobJournal::new(&dir);
        let mirror = JobJournal::new(&mirror_dir);
        let spec = spikegen::dvs_gesture();
        source.log_submit(4, &spec, Policy::ptb(), &[1, 4], true, 9, AuditLevel::Off);
        source.log_dispatch(4, 0, "127.0.0.1:4001", 1);

        let index = source.tail_index();
        assert_eq!(index.len(), 1);
        let (id, len) = index[0];
        assert_eq!(id, 4);
        assert_eq!(len, source.file_len(4));

        // First pull: everything from 0.
        let bytes = source.read_from(4, 0).unwrap();
        mirror.append_raw(4, 0, &bytes).unwrap();
        assert_eq!(mirror.file_len(4), len);

        // The source grows; the mirror pulls only the delta.
        source.log_shard(4, 0, &row(1, 2.0));
        let grown = source.file_len(4);
        assert!(grown > len);
        let delta = source.read_from(4, len).unwrap();
        mirror.append_raw(4, len, &delta).unwrap();
        assert_eq!(
            std::fs::read(mirror.path(4)).unwrap(),
            std::fs::read(source.path(4)).unwrap(),
            "mirror is byte-identical"
        );

        // A cursor mismatch is refused (caller refetches from 0).
        assert!(mirror.append_raw(4, len, &delta).is_err());
        // Reading past EOF is empty, not an error.
        assert!(source.read_from(4, grown + 100).unwrap().is_empty());

        // The mirrored journal replays exactly like the source's.
        let replayed = JobJournal::new(&mirror_dir).replay();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].shards, vec![(0, row(1, 2.0))]);
        assert_eq!(
            replayed[0].dispatches,
            vec![(0, "127.0.0.1:4001".to_string())]
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&mirror_dir);
    }

    #[test]
    fn done_without_all_shards_resumes_instead() {
        let dir = tmp_dir("early-done");
        let journal = JobJournal::new(&dir);
        journal.log_submit(
            9,
            &spikegen::dvs_gesture(),
            Policy::ptb(),
            &[1, 4],
            true,
            1,
            AuditLevel::Off,
        );
        journal.log_shard(9, 0, &row(1, 3.0));
        journal.log_done(9); // lies: shard 1 is missing
        let fresh = JobJournal::new(&dir);
        let jobs = fresh.replay();
        assert!(!jobs[0].done, "done without full rows must resume");
        assert_eq!(jobs[0].shards.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_journal(journal: &JobJournal, id: u64) {
        journal.log_submit(
            id,
            &spikegen::dvs_gesture(),
            Policy::ptb(),
            &[1],
            true,
            id,
            AuditLevel::Off,
        );
        journal.log_done(id);
    }

    #[test]
    fn remove_deletes_one_journal_and_counts_it() {
        let dir = tmp_dir("remove");
        let journal = JobJournal::new(&dir);
        write_journal(&journal, 7);
        write_journal(&journal, 8);
        assert!(journal.path(7).exists());
        journal.remove(7);
        assert!(!journal.path(7).exists());
        assert!(journal.path(8).exists(), "other journals untouched");
        assert_eq!(journal.stats().gc_removed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_reaps_old_bad_files_but_keeps_young_ones() {
        let dir = tmp_dir("gc-bad");
        let journal = JobJournal::new(&dir);
        write_journal(&journal, 1);
        let bad = dir.join("job-dead.ptbj.bad");
        std::fs::write(&bad, b"quarantined garbage").unwrap();

        // Young .bad survives a generous retention window.
        journal.gc(Duration::from_secs(3600), None, &|_| false);
        assert!(bad.exists(), "young quarantine file kept for inspection");
        assert!(journal.path(1).exists());
        assert!(journal.stats().dir_bytes > 0, "dir gauge refreshed");

        // Zero retention: every .bad is already older than the window.
        journal.gc(Duration::from_secs(0), None, &|_| false);
        assert!(!bad.exists(), "expired quarantine file reaped");
        assert!(
            journal.path(1).exists(),
            "live journals are never age-reaped, only budget-reaped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_budget_reaps_only_expendable_journals_oldest_first() {
        let dir = tmp_dir("gc-budget");
        let journal = JobJournal::new(&dir);
        write_journal(&journal, 1); // oldest, expendable
        std::thread::sleep(Duration::from_millis(20));
        write_journal(&journal, 2); // expendable
        std::thread::sleep(Duration::from_millis(20));
        write_journal(&journal, 3); // NOT expendable (running)

        // A 1-byte budget wants everything gone, but only expendable
        // journals may be sacrificed; the running job's file survives.
        journal.gc(Duration::from_secs(3600), Some(1), &|id| id != 3);
        assert!(!journal.path(1).exists(), "oldest expendable reaped first");
        assert!(!journal.path(2).exists());
        assert!(journal.path(3).exists(), "running job's journal is sacred");

        // With a budget large enough for the remaining file, nothing more
        // is reaped even though everything is expendable.
        journal.gc(Duration::from_secs(3600), Some(1 << 20), &|_| true);
        assert!(journal.path(3).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_file_id_parses_names() {
        assert_eq!(journal_file_id("job-2a.ptbj"), Some(0x2a));
        assert_eq!(journal_file_id("job-0.ptbj"), Some(0));
        assert_eq!(journal_file_id("job-2a.ptbj.bad"), None);
        assert_eq!(journal_file_id("other.ptbj"), None);
        assert_eq!(journal_file_id("job-zz.ptbj"), None);
    }
}

//! Simulation results: per-layer and per-network reports, and EDP.

use serde::{Deserialize, Serialize};
use systolic_sim::{AccessCounts, EnergyBreakdown};

use crate::config::Policy;

/// Result of simulating one layer under one policy and TW size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// The schedule that produced this report.
    pub policy: Policy,
    /// Time-window size used (1 for the non-PTB policies).
    pub tw_size: u32,
    /// Aggregated access trace.
    pub counts: AccessCounts,
    /// Energy evaluation of `counts`.
    pub energy: EnergyBreakdown,
    /// Total latency in clock cycles.
    pub cycles: u64,
    /// Latency in seconds at the configured clock.
    pub seconds: f64,
    /// PE-cycles that performed a useful accumulation.
    pub useful_ops: u64,
    /// Total PE-cycles over the run (PE count × cycles).
    pub pe_cycles: u64,
    /// Streaming entries before StSAP packing (summed over iterations).
    pub entries_before: u64,
    /// Streaming slots actually issued (after packing, if enabled).
    pub entries_after: u64,
    /// Exact-complement StSAP pairs formed.
    pub exact_pairs: u64,
    /// Nearest-complement (disjoint) StSAP pairs formed.
    pub near_pairs: u64,
}

impl LayerReport {
    /// Total energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy.total_joules()
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy_joules() * self.seconds
    }

    /// Array utilization: useful accumulations / total PE-cycles.
    pub fn utilization(&self) -> f64 {
        if self.pe_cycles == 0 {
            0.0
        } else {
            self.useful_ops as f64 / self.pe_cycles as f64
        }
    }

    /// Fraction of streaming slots StSAP eliminated.
    pub fn packing_saving(&self) -> f64 {
        if self.entries_before == 0 {
            0.0
        } else {
            1.0 - self.entries_after as f64 / self.entries_before as f64
        }
    }
}

/// Results for a whole network: one report per layer, with the paper's
/// EDP aggregation (Section VI-B4: per-layer energy × per-layer latency,
/// summed across layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// `(layer name, report)` pairs in execution order.
    pub layers: Vec<(String, LayerReport)>,
}

impl NetworkReport {
    /// Creates a report from named per-layer results.
    pub fn new(network: impl Into<String>, layers: Vec<(String, LayerReport)>) -> Self {
        NetworkReport {
            network: network.into(),
            layers,
        }
    }

    /// Total energy across layers, joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.layers.iter().map(|(_, r)| r.energy_joules()).sum()
    }

    /// Total latency across layers, seconds (layer-by-layer execution).
    pub fn total_seconds(&self) -> f64 {
        self.layers.iter().map(|(_, r)| r.seconds).sum()
    }

    /// Total cycles across layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|(_, r)| r.cycles).sum()
    }

    /// The paper's total EDP: `Σ_layers E_l · D_l` (joule-seconds).
    pub fn total_edp(&self) -> f64 {
        self.layers.iter().map(|(_, r)| r.edp()).sum()
    }

    /// Looks up one layer's report by name.
    pub fn layer(&self, name: &str) -> Option<&LayerReport> {
        self.layers
            .iter()
            .find_map(|(n, r)| (n == name).then_some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_sim::EnergyModel;

    fn dummy_report(cycles: u64, dram_bits: u64) -> LayerReport {
        let mut counts = AccessCounts::new();
        counts.read(
            systolic_sim::MemLevel::Dram,
            systolic_sim::DataKind::Weight,
            dram_bits,
        );
        let energy = EnergyModel::cacti_32nm().evaluate(&counts);
        LayerReport {
            policy: Policy::ptb(),
            tw_size: 8,
            counts,
            energy,
            cycles,
            seconds: cycles as f64 / 1e9,
            useful_ops: cycles / 2,
            pe_cycles: cycles * 128,
            entries_before: 100,
            entries_after: 80,
            exact_pairs: 15,
            near_pairs: 5,
        }
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let r = dummy_report(1_000_000, 8_000_000);
        let expect = r.energy_joules() * r.seconds;
        assert!((r.edp() - expect).abs() < 1e-30);
        assert!(r.edp() > 0.0);
    }

    #[test]
    fn utilization_and_packing() {
        let r = dummy_report(1000, 8);
        assert!((r.utilization() - 0.5 / 128.0).abs() < 1e-12);
        assert!((r.packing_saving() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn network_totals_sum_layers() {
        let net = NetworkReport::new(
            "test",
            vec![
                ("A".to_string(), dummy_report(1000, 800)),
                ("B".to_string(), dummy_report(2000, 1600)),
            ],
        );
        assert_eq!(net.total_cycles(), 3000);
        let edp_sum: f64 = net.layers.iter().map(|(_, r)| r.edp()).sum();
        assert!((net.total_edp() - edp_sum).abs() < 1e-30);
        assert!(net.layer("A").is_some());
        assert!(net.layer("C").is_none());
        // Paper's aggregation is per-layer products, not product of totals.
        assert!((net.total_edp() - net.total_energy_joules() * net.total_seconds()).abs() > 0.0);
    }

    #[test]
    fn zero_pe_cycles_is_zero_utilization() {
        let mut r = dummy_report(0, 0);
        r.pe_cycles = 0;
        assert_eq!(r.utilization(), 0.0);
    }
}

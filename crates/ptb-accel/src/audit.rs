//! Runtime audit layer: every simulation run can prove itself correct.
//!
//! An analytic model is trusted only as far as its accounting is
//! audited. This module re-derives, independently of the hot path, the
//! structural invariants the scheduler relies on and — at the higher
//! levels — replays sampled post-synaptic neurons through the serial
//! reference dynamics ([`crate::reference`]), diffing output spike
//! trains bit-for-bit. Divergences become typed
//! [`snn_core::error::AuditError`] findings carrying first-divergence
//! coordinates (layer, neuron, timestep), never panics.
//!
//! ## Levels (`PTB_VERIFY=off|sample|full`)
//!
//! * [`AuditLevel::Off`] — no checks, no measurable overhead (the knob
//!   is consulted once per run).
//! * [`AuditLevel::Sample`] — a deterministic sample of positions and
//!   neurons: up to [`SAMPLE_TILE_BUDGET`] positions' StSAP tiles and
//!   [`SAMPLE_REPLAY_BUDGET`] replayed neurons per layer, plus a
//!   sampled popcount re-derivation.
//! * [`AuditLevel::Full`] — exhaustive structural checks (every
//!   position's tiles, every neuron's window popcounts), a merge
//!   permutation-invariance re-simulation, and a replay sample widened
//!   to [`FULL_REPLAY_BUDGET`] stratified neurons per layer.
//!
//! Replay at `full` is *capped*, not literally exhaustive: replaying
//! every post-synaptic neuron of a production CONV layer would cost
//! millions of reference runs per layer. The cap is stratified across
//! output positions and deterministic (same layer → same sample every
//! run), so repeated full audits cover the same witness set and any
//! systematic divergence in the batched decomposition is caught by the
//! structural checks plus the witness replays. Checks that guard
//! against *data corruption* (window popcounts vs the raw tensor,
//! cached-activity diffs in `ptb-bench`) remain exhaustive at every
//! on level, so a flipped bit is always found.
//!
//! ## What each invariant guards
//!
//! * **Tile coverage** — the window partition schedules every
//!   (post-neuron, TW) tile exactly once; a gap silently drops work, an
//!   overlap double-counts energy.
//! * **Popcount re-derivation** — the memoized per-(neuron, window)
//!   spike counts that drive TB-tags match the raw `SpikeTensor`; a
//!   stale or mis-keyed memo mis-classifies neurons.
//! * **Tag re-derivation** — the packed window-activity tag words the
//!   bit-parallel gather scans agree bit-for-bit with the popcount
//!   table (and keep their tail bits clear); a drifted tag silently
//!   drops or invents streamed work.
//! * **StSAP packing** — packing conserves entries (each input entry in
//!   exactly one slot), never pairs overlapping tags, and its slot
//!   accounting balances; violations would corrupt both latency and the
//!   paper's packing-saving metric.
//! * **Replay** — the batched Step A / Step B decomposition (Eqs. 7–8)
//!   matches the serial reference dynamics (Eqs. 1–3) on the actual
//!   layer activity.
//! * **Merge invariance** — re-simulating with a different worker count
//!   reproduces the report bit-for-bit (the determinism contract of
//!   `ptb_accel::sim`).
//! * **Saturation** — checked accumulators clamped instead of wrapping;
//!   a nonzero counter means totals are lower bounds.

use serde::{Deserialize, Serialize};
use snn_core::error::AuditError;
use snn_core::neuron::NeuronConfig;
use snn_core::spike::SpikeTensor;

use crate::config::{Policy, SimInputs};
use crate::prepared::PreparedLayer;
use crate::reference::{batched_neuron_forward, serial_neuron_forward};
use crate::report::LayerReport;
use crate::sim::simulate_layer_prepared;
use crate::stsap::{pack_tile, PackResult};
use crate::window::WindowPartition;

/// How much of a run the audit layer verifies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditLevel {
    /// No checks (the default): zero overhead on the hot path.
    #[default]
    Off,
    /// Deterministic samples of every invariant class.
    Sample,
    /// Exhaustive structural checks plus widened replay samples and a
    /// merge-invariance re-simulation.
    Full,
}

impl AuditLevel {
    /// Parses `off|sample|full` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(AuditLevel::Off),
            "sample" => Some(AuditLevel::Sample),
            "full" => Some(AuditLevel::Full),
            _ => None,
        }
    }

    /// Reads `PTB_VERIFY` from the environment; unset or unrecognized
    /// values mean [`AuditLevel::Off`].
    pub fn from_env() -> Self {
        std::env::var("PTB_VERIFY")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(AuditLevel::Off)
    }

    /// The knob spelling of this level.
    pub fn label(self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Sample => "sample",
            AuditLevel::Full => "full",
        }
    }

    /// Whether any checking happens at this level.
    pub fn is_on(self) -> bool {
        !matches!(self, AuditLevel::Off)
    }
}

/// Replayed neurons per layer at [`AuditLevel::Full`].
pub const FULL_REPLAY_BUDGET: usize = 64;
/// Replayed neurons per layer at [`AuditLevel::Sample`].
pub const SAMPLE_REPLAY_BUDGET: usize = 8;
/// Positions whose StSAP tiles are verified at [`AuditLevel::Sample`].
pub const SAMPLE_TILE_BUDGET: usize = 32;
/// Pre-synaptic neurons whose popcounts are re-derived at
/// [`AuditLevel::Sample`].
pub const SAMPLE_POPCOUNT_BUDGET: usize = 64;
/// Findings retained verbatim in an [`AuditSummary`]; the total count
/// keeps incrementing past the cap.
pub const FINDINGS_CAP: usize = 32;

/// Aggregated outcome of auditing one or more layers/runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// The level the audit ran at.
    pub level: AuditLevel,
    /// Layers that went through [`audit_layer`].
    pub layers_checked: u64,
    /// (position, column-tile) StSAP tiles re-packed and verified.
    pub tiles_checked: u64,
    /// Post-synaptic neurons replayed through the serial reference.
    pub neurons_replayed: u64,
    /// Activity tensors diffed against a fresh regeneration.
    pub activity_checked: u64,
    /// Total saturated accumulations observed across audited reports.
    pub saturated: u64,
    /// Total findings observed (keeps counting past [`FINDINGS_CAP`]).
    pub mismatches: u64,
    /// The first [`FINDINGS_CAP`] findings, in discovery order.
    pub findings: Vec<AuditError>,
}

impl AuditSummary {
    /// An empty summary at `level`.
    pub fn new(level: AuditLevel) -> Self {
        AuditSummary {
            level,
            layers_checked: 0,
            tiles_checked: 0,
            neurons_replayed: 0,
            activity_checked: 0,
            saturated: 0,
            mismatches: 0,
            findings: Vec::new(),
        }
    }

    /// Whether the audit observed zero findings.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0
    }

    /// The first finding, if any.
    pub fn first(&self) -> Option<&AuditError> {
        self.findings.first()
    }

    /// Records a finding, retaining at most [`FINDINGS_CAP`] verbatim.
    pub fn record(&mut self, finding: AuditError) {
        self.mismatches += 1;
        if self.findings.len() < FINDINGS_CAP {
            self.findings.push(finding);
        }
    }

    /// Folds another summary (e.g. another layer or sweep shard) into
    /// this one. The level is taken from `self`.
    pub fn merge(&mut self, other: AuditSummary) {
        self.layers_checked += other.layers_checked;
        self.tiles_checked += other.tiles_checked;
        self.neurons_replayed += other.neurons_replayed;
        self.activity_checked += other.activity_checked;
        self.saturated = self.saturated.saturating_add(other.saturated);
        self.mismatches += other.mismatches;
        for f in other.findings {
            if self.findings.len() >= FINDINGS_CAP {
                break;
            }
            self.findings.push(f);
        }
    }

    /// `Ok(self)` when clean, `Err(first finding)` otherwise.
    pub fn into_result(self) -> Result<AuditSummary, AuditError> {
        if self.is_clean() {
            Ok(self)
        } else {
            // A nonzero mismatch count always has a retained finding:
            // `record` caps retention, never the first entry.
            Err(self
                .findings
                .into_iter()
                .next()
                .expect("non-clean summary retains its first finding"))
        }
    }
}

/// SplitMix64 step — the audit's deterministic sampling/weight stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a name: the per-layer audit seed, stable across runs.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A weight in `[-0.5, 0.5)` from one SplitMix64 draw.
fn weight_from(draw: u64) -> f32 {
    ((draw >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// First index where two spike trains differ.
fn first_divergence(expected: &[bool], got: &[bool]) -> Option<usize> {
    expected
        .iter()
        .zip(got)
        .position(|(e, g)| e != g)
        .or_else(|| (expected.len() != got.len()).then_some(expected.len().min(got.len())))
}

/// Diffs a cached/recovered activity tensor against its fresh
/// regeneration, returning the first-divergence coordinates as a
/// [`AuditError::CorruptActivity`] finding (or `None` when identical).
///
/// Word-level compare first, so the exhaustive check stays cheap enough
/// to run at every on level — this is the check that catches a bit
/// flipped between generation and consumption (e.g. a corrupted disk
/// cache entry).
pub fn diff_activity(layer: &str, expected: &SpikeTensor, got: &SpikeTensor) -> Option<AuditError> {
    if expected.neurons() != got.neurons() || expected.timesteps() != got.timesteps() {
        return Some(AuditError::CorruptActivity {
            layer: layer.to_string(),
            neuron: 0,
            timestep: 0,
            expected: false,
            got: false,
        });
    }
    if expected.neurons() == 0 || expected.timesteps() == 0 {
        return None;
    }
    let (ew, gw) = (expected.words(), got.words());
    let idx = ew.iter().zip(gw).position(|(a, b)| a != b)?;
    let wpn = ew.len() / expected.neurons();
    let neuron = idx / wpn;
    let bit = (ew[idx] ^ gw[idx]).trailing_zeros() as usize;
    let timestep = (idx % wpn) * 64 + bit;
    Some(AuditError::CorruptActivity {
        layer: layer.to_string(),
        neuron,
        timestep,
        expected: expected.get(neuron, timestep),
        got: got.get(neuron, timestep),
    })
}

/// Verifies one packed tile's invariants: entry conservation (each
/// input entry in exactly one slot), pair disjointness, and slot
/// accounting. Records findings into `summary`.
pub fn verify_pack(
    layer: &str,
    tile: usize,
    tags: &[u128],
    packed: &PackResult,
    summary: &mut AuditSummary,
) {
    summary.tiles_checked += 1;
    if packed.entries_before != tags.len()
        || packed.entries_after() + packed.pairs() != packed.entries_before
    {
        summary.record(AuditError::SlotAccounting {
            layer: layer.to_string(),
            tile,
            before: packed.entries_before as u64,
            after: packed.entries_after() as u64,
            pairs: packed.pairs() as u64,
        });
    }
    let mut coverage = vec![0usize; tags.len()];
    for slot in &packed.slots {
        for member in [Some(slot.first), slot.second].into_iter().flatten() {
            match coverage.get_mut(member) {
                Some(c) => *c += 1,
                None => summary.record(AuditError::PackingCoverage {
                    layer: layer.to_string(),
                    tile,
                    entry: member,
                    count: 0,
                }),
            }
        }
        if let Some(second) = slot.second {
            let overlap = match (tags.get(slot.first), tags.get(second)) {
                (Some(a), Some(b)) => a & b != 0,
                _ => false, // out-of-range already reported above
            };
            if overlap {
                summary.record(AuditError::PackingOverlap {
                    layer: layer.to_string(),
                    tile,
                    first: slot.first,
                    second,
                });
            }
        }
    }
    for (entry, &count) in coverage.iter().enumerate() {
        if count != 1 {
            summary.record(AuditError::PackingCoverage {
                layer: layer.to_string(),
                tile,
                entry,
                count,
            });
        }
    }
}

/// Verifies a packed window-activity tag table against the popcount
/// table it was derived from: bit `w` of a neuron's tag words must be
/// set iff the window's count is nonzero, and the bits past the last
/// window must be clear (the invariant the word gather's funnel shifts
/// rely on). Checks every `stride`-th neuron; records the first
/// divergence per call into `summary`.
pub fn verify_tags(
    layer: &str,
    n_w: usize,
    pops: &[u16],
    tags: &[u64],
    stride: usize,
    summary: &mut AuditSummary,
) {
    if n_w == 0 {
        return;
    }
    let tag_words = n_w.div_ceil(64);
    let neurons = pops.len() / n_w;
    for n in (0..neurons).step_by(stride.max(1)) {
        for w in 0..n_w {
            let got = tags[n * tag_words + w / 64] >> (w % 64) & 1 == 1;
            let expected = pops[n * n_w + w] > 0;
            if expected != got {
                summary.record(AuditError::TagMismatch {
                    layer: layer.to_string(),
                    neuron: n,
                    window: w,
                    expected,
                    got,
                });
                return; // first divergence is the report
            }
        }
        let tail_bits = n_w % 64;
        if tail_bits != 0 && tags[n * tag_words + tag_words - 1] >> tail_bits != 0 {
            // A phantom window past the end of the partition.
            summary.record(AuditError::TagMismatch {
                layer: layer.to_string(),
                neuron: n,
                window: n_w,
                expected: false,
                got: true,
            });
            return;
        }
    }
}

/// Audits one simulated layer at `level`, recording findings and
/// coverage counters into `summary`. `report` is the layer's production
/// result (checked for saturation and, at [`AuditLevel::Full`], for
/// merge invariance). Never panics on well-formed inputs; divergences
/// are typed findings.
pub fn audit_layer(
    inputs: &SimInputs,
    policy: Policy,
    prep: &PreparedLayer,
    layer_name: &str,
    report: &LayerReport,
    level: AuditLevel,
    summary: &mut AuditSummary,
) {
    if !level.is_on() {
        return;
    }
    summary.layers_checked += 1;

    // --- Saturation: a clamped accumulator means the totals are lower
    // bounds; surface it as a finding rather than trusting the report.
    if report.counts.saturated > 0 {
        summary.saturated = summary.saturated.saturating_add(report.counts.saturated);
        summary.record(AuditError::AccumulatorSaturation {
            layer: layer_name.to_string(),
            saturated: report.counts.saturated,
        });
    }

    let is_ptb = matches!(policy, Policy::Ptb { .. });
    let spikes = prep.spikes();
    let t = spikes.timesteps();

    if is_ptb && t > 0 {
        let part = WindowPartition::new(t, inputs.tw_size as usize);
        let n_w = part.num_windows();

        // --- Popcount re-derivation: the memo the scheduler consumed vs
        // counts taken directly from the raw tensor.
        let memo = prep.window_popcounts(part.tw_size());
        let neurons = spikes.neurons();
        let stride = match level {
            AuditLevel::Full => 1,
            _ => (neurons / SAMPLE_POPCOUNT_BUDGET).max(1),
        };
        'popcounts: for n in (0..neurons).step_by(stride) {
            for w in 0..n_w {
                let (s, e) = part.window_range(w);
                let expected = spikes.popcount_range(n, s, e) as u16;
                let got = memo[n * n_w + w];
                if expected != got {
                    summary.record(AuditError::PopcountMismatch {
                        layer: layer_name.to_string(),
                        neuron: n,
                        window: w,
                        expected,
                        got,
                    });
                    break 'popcounts; // first divergence is the report
                }
            }
        }

        // --- Tag re-derivation: the packed tag words the word kernel's
        // gather actually scans, vs the popcount table just verified.
        let tables = prep.window_tables(part.tw_size());
        verify_tags(layer_name, n_w, &memo, &tables.tags, stride, summary);

        // --- Tile coverage: the column tiles must schedule every time
        // window exactly once.
        let cols = inputs.arch.array.cols() as usize;
        let tiles = part.column_tiles(cols);
        let mut covered = vec![0usize; n_w];
        for &(w0, w1) in &tiles {
            for c in covered.iter_mut().take(w1.min(n_w)).skip(w0) {
                *c += 1;
            }
        }
        for (window, &count) in covered.iter().enumerate() {
            if count != 1 {
                summary.record(AuditError::TileCoverage {
                    layer: layer_name.to_string(),
                    window,
                    count,
                });
                break;
            }
        }

        // --- StSAP re-pack: rebuild each sampled position's tile tags
        // exactly like the scheduler and verify the packing invariants.
        if let Policy::Ptb { stsap: true } = policy {
            let geo = prep.geometry();
            let positions = geo.positions();
            let memo: &[u16] = &memo;
            let pos_stride = match level {
                AuditLevel::Full => 1,
                _ => (positions / SAMPLE_TILE_BUDGET).max(1),
            };
            let mut tags: Vec<u128> = Vec::new();
            for p in (0..positions).step_by(pos_stride) {
                let rf = geo.rf(p);
                for (tile_idx, &(w0, w1)) in tiles.iter().enumerate() {
                    let nw = w1 - w0;
                    let full_mask = if nw == 128 {
                        u128::MAX
                    } else {
                        (1u128 << nw) - 1
                    };
                    tags.clear();
                    for &n in rf {
                        let base = n * n_w;
                        let mut mask = 0u128;
                        for (i, w) in (w0..w1).enumerate() {
                            if memo[base + w] > 0 {
                                mask |= 1 << i;
                            }
                        }
                        if mask != 0 {
                            tags.push(mask);
                        }
                    }
                    if tags.is_empty() {
                        continue;
                    }
                    let packed = pack_tile(&tags, full_mask);
                    verify_pack(layer_name, tile_idx, &tags, &packed, summary);
                }
            }
        }

        // --- Replay: stratified post-synaptic neurons through the
        // serial reference dynamics, diffed bit-for-bit against the
        // batched Step A / Step B decomposition.
        let geo = prep.geometry();
        let positions = geo.positions();
        let channels = prep.shape().out_channels() as usize;
        if positions > 0 && channels > 0 {
            let budget = match level {
                AuditLevel::Full => FULL_REPLAY_BUDGET,
                _ => SAMPLE_REPLAY_BUDGET,
            }
            .min(positions.saturating_mul(channels));
            let mut rng = fnv64(layer_name);
            let neuron_cfg = NeuronConfig::lif(1.0, 0.05);
            let arr_cols = inputs.arch.array.cols();
            for i in 0..budget {
                // Stratify positions across the output map; draw the
                // channel (and weights) from the deterministic stream.
                let p = (i * positions) / budget;
                let ch = (splitmix(&mut rng) as usize) % channels;
                let rf = geo.rf(p);
                if rf.is_empty() {
                    continue;
                }
                let rf_spikes = spikes
                    .select(rf)
                    .expect("receptive-field indices are in range");
                let weights: Vec<f32> = (0..rf.len())
                    .map(|_| weight_from(splitmix(&mut rng)))
                    .collect();
                let serial = serial_neuron_forward(&weights, &rf_spikes, neuron_cfg);
                let batched = batched_neuron_forward(
                    &weights,
                    &rf_spikes,
                    neuron_cfg,
                    inputs.tw_size,
                    arr_cols,
                );
                summary.neurons_replayed += 1;
                if let Some(timestep) = first_divergence(&serial, &batched) {
                    summary.record(AuditError::ReplayDivergence {
                        layer: layer_name.to_string(),
                        neuron: ch * positions + p,
                        timestep,
                        expected: serial.get(timestep).copied().unwrap_or(false),
                        got: batched.get(timestep).copied().unwrap_or(false),
                    });
                }
            }
        }
    }

    // --- Merge invariance (full only: costs one extra simulation): a
    // different worker count must reproduce the report bit-for-bit.
    if level == AuditLevel::Full {
        let alt_threads = if inputs.threads == 1 { 2 } else { 1 };
        let alt = simulate_layer_prepared(&inputs.with_threads(alt_threads), policy, prep);
        if alt != *report {
            summary.record(AuditError::MergeDivergence {
                layer: layer_name.to_string(),
                threads: alt_threads,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stsap::Slot;
    use snn_core::shape::ConvShape;
    use std::sync::Arc;

    fn prepared() -> PreparedLayer {
        let shape = ConvShape::new(6, 3, 4, 8, 1).unwrap();
        let input = SpikeTensor::from_fn(shape.ifmap_neurons(), 48, |n, tp| {
            n % 3 != 2 && (n * 7 + tp * 11) % 17 == 0
        });
        PreparedLayer::new(shape, Arc::new(input))
    }

    #[test]
    fn level_parsing_and_env_spelling() {
        assert_eq!(AuditLevel::parse("off"), Some(AuditLevel::Off));
        assert_eq!(AuditLevel::parse("SAMPLE"), Some(AuditLevel::Sample));
        assert_eq!(AuditLevel::parse("Full"), Some(AuditLevel::Full));
        assert_eq!(AuditLevel::parse("yes"), None);
        assert_eq!(AuditLevel::default(), AuditLevel::Off);
        assert!(!AuditLevel::Off.is_on());
        assert!(AuditLevel::Sample.is_on());
        for level in [AuditLevel::Off, AuditLevel::Sample, AuditLevel::Full] {
            assert_eq!(AuditLevel::parse(level.label()), Some(level));
        }
    }

    #[test]
    fn clean_layer_audits_clean_at_every_level() {
        let prep = prepared();
        for stsap in [false, true] {
            let policy = Policy::Ptb { stsap };
            for threads in [1usize, 3] {
                let inputs = SimInputs::hpca22(8).with_threads(threads);
                let report = simulate_layer_prepared(&inputs, policy, &prep);
                for level in [AuditLevel::Sample, AuditLevel::Full] {
                    let mut summary = AuditSummary::new(level);
                    audit_layer(
                        &inputs,
                        policy,
                        &prep,
                        "CONV1",
                        &report,
                        level,
                        &mut summary,
                    );
                    assert!(
                        summary.is_clean(),
                        "stsap={stsap} threads={threads} {level:?}: {:?}",
                        summary.first()
                    );
                    assert_eq!(summary.layers_checked, 1);
                    assert!(summary.neurons_replayed > 0);
                }
            }
        }
    }

    #[test]
    fn off_level_checks_nothing() {
        let prep = prepared();
        let inputs = SimInputs::hpca22(8);
        let report = simulate_layer_prepared(&inputs, Policy::ptb(), &prep);
        let mut summary = AuditSummary::new(AuditLevel::Off);
        audit_layer(
            &inputs,
            Policy::ptb(),
            &prep,
            "CONV1",
            &report,
            AuditLevel::Off,
            &mut summary,
        );
        assert_eq!(summary.layers_checked, 0);
        assert_eq!(summary.neurons_replayed, 0);
        assert!(summary.is_clean());
    }

    #[test]
    fn saturated_report_becomes_a_finding() {
        let prep = prepared();
        let inputs = SimInputs::hpca22(8);
        let mut report = simulate_layer_prepared(&inputs, Policy::ptb(), &prep);
        report.counts.saturated = 7;
        let mut summary = AuditSummary::new(AuditLevel::Sample);
        audit_layer(
            &inputs,
            Policy::ptb(),
            &prep,
            "CONV1",
            &report,
            AuditLevel::Sample,
            &mut summary,
        );
        assert_eq!(summary.saturated, 7);
        assert!(matches!(
            summary.first(),
            Some(AuditError::AccumulatorSaturation { saturated: 7, .. })
        ));
    }

    #[test]
    fn verify_tags_catches_drift_and_dirty_tails() {
        let spikes = SpikeTensor::from_fn(3, 70, |n, tp| (n * 7 + tp) % 9 == 0);
        let part = WindowPartition::new(70, 2); // 35 windows, one tag word
        let n_w = part.num_windows();
        let pops = crate::geom::window_popcounts(&spikes, &part);
        let tags = crate::geom::window_tags(&spikes, &part, &pops);

        let mut clean = AuditSummary::new(AuditLevel::Full);
        verify_tags("L", n_w, &pops, &tags, 1, &mut clean);
        assert!(clean.is_clean(), "{:?}", clean.first());

        // Flip one live tag bit: dropped-work divergence.
        let mut doctored = tags.clone();
        doctored[1] ^= 1 << 3;
        let mut s = AuditSummary::new(AuditLevel::Full);
        verify_tags("L", n_w, &pops, &doctored, 1, &mut s);
        assert!(matches!(
            s.first(),
            Some(AuditError::TagMismatch {
                neuron: 1,
                window: 3,
                ..
            })
        ));

        // Set a bit past the last window: phantom-window divergence.
        let mut dirty = tags.clone();
        dirty[2] |= 1 << (n_w % 64);
        let mut s = AuditSummary::new(AuditLevel::Full);
        verify_tags("L", n_w, &pops, &dirty, 1, &mut s);
        assert!(matches!(
            s.first(),
            Some(AuditError::TagMismatch {
                neuron: 2,
                window: 35,
                expected: false,
                got: true,
                ..
            })
        ));
    }

    #[test]
    fn verify_pack_accepts_real_packings() {
        let tags: Vec<u128> = (1u128..40)
            .map(|i| (i * 0x2D) % 255)
            .filter(|&t| t != 0)
            .collect();
        let packed = pack_tile(&tags, 0xFF);
        let mut summary = AuditSummary::new(AuditLevel::Full);
        verify_pack("L", 0, &tags, &packed, &mut summary);
        assert!(summary.is_clean(), "{:?}", summary.first());
        assert_eq!(summary.tiles_checked, 1);
    }

    #[test]
    fn verify_pack_catches_overlapping_pair() {
        let tags = vec![0b0011u128, 0b0110];
        let doctored = PackResult {
            slots: vec![Slot {
                first: 0,
                second: Some(1),
            }],
            entries_before: 2,
            exact_pairs: 0,
            near_pairs: 1,
        };
        let mut summary = AuditSummary::new(AuditLevel::Full);
        verify_pack("L", 3, &tags, &doctored, &mut summary);
        assert!(matches!(
            summary.first(),
            Some(AuditError::PackingOverlap {
                tile: 3,
                first: 0,
                second: 1,
                ..
            })
        ));
    }

    #[test]
    fn verify_pack_catches_lost_and_duplicated_entries() {
        let tags = vec![0b0001u128, 0b0010, 0b0100];
        // Entry 2 dropped, entry 0 duplicated.
        let doctored = PackResult {
            slots: vec![
                Slot {
                    first: 0,
                    second: None,
                },
                Slot {
                    first: 0,
                    second: Some(1),
                },
            ],
            entries_before: 3,
            exact_pairs: 0,
            near_pairs: 1,
        };
        let mut summary = AuditSummary::new(AuditLevel::Full);
        verify_pack("L", 0, &tags, &doctored, &mut summary);
        let findings = &summary.findings;
        assert!(findings.iter().any(|f| matches!(
            f,
            AuditError::PackingCoverage {
                entry: 0,
                count: 2,
                ..
            }
        )));
        assert!(findings.iter().any(|f| matches!(
            f,
            AuditError::PackingCoverage {
                entry: 2,
                count: 0,
                ..
            }
        )));
    }

    #[test]
    fn verify_pack_catches_unbalanced_accounting() {
        let tags = vec![0b0001u128, 0b0010];
        let doctored = PackResult {
            slots: vec![
                Slot {
                    first: 0,
                    second: None,
                },
                Slot {
                    first: 1,
                    second: None,
                },
            ],
            entries_before: 2,
            exact_pairs: 1, // claims a pair that doesn't exist
            near_pairs: 0,
        };
        let mut summary = AuditSummary::new(AuditLevel::Full);
        verify_pack("L", 0, &tags, &doctored, &mut summary);
        assert!(matches!(
            summary.first(),
            Some(AuditError::SlotAccounting {
                before: 2,
                after: 2,
                pairs: 1,
                ..
            })
        ));
    }

    #[test]
    fn diff_activity_names_the_flipped_bit() {
        let a = SpikeTensor::from_fn(5, 130, |n, t| (n + t) % 7 == 0);
        let mut b = a.clone();
        assert!(diff_activity("L", &a, &b).is_none());
        let flipped = !b.get(3, 100);
        b.set(3, 100, flipped);
        match diff_activity("L", &a, &b) {
            Some(AuditError::CorruptActivity {
                neuron,
                timestep,
                expected,
                got,
                ..
            }) => {
                assert_eq!((neuron, timestep), (3, 100));
                assert_eq!(expected, !flipped);
                assert_eq!(got, flipped);
            }
            other => panic!("expected CorruptActivity, got {other:?}"),
        }
    }

    #[test]
    fn diff_activity_rejects_shape_drift() {
        let a = SpikeTensor::new(4, 16);
        let b = SpikeTensor::new(4, 32);
        assert!(diff_activity("L", &a, &b).is_some());
        assert!(diff_activity("L", &SpikeTensor::new(0, 0), &SpikeTensor::new(0, 0)).is_none());
    }

    #[test]
    fn first_divergence_finds_length_and_value_diffs() {
        assert_eq!(first_divergence(&[true, false], &[true, false]), None);
        assert_eq!(first_divergence(&[true, false], &[true, true]), Some(1));
        assert_eq!(
            first_divergence(&[true, false, true], &[true, false]),
            Some(2)
        );
    }

    #[test]
    fn summary_caps_findings_but_counts_everything() {
        let mut s = AuditSummary::new(AuditLevel::Sample);
        for i in 0..(FINDINGS_CAP + 10) {
            s.record(AuditError::RowMismatch { index: i, tw: 1 });
        }
        assert_eq!(s.findings.len(), FINDINGS_CAP);
        assert_eq!(s.mismatches, (FINDINGS_CAP + 10) as u64);
        assert!(!s.is_clean());
        assert!(s.clone().into_result().is_err());

        let mut merged = AuditSummary::new(AuditLevel::Sample);
        merged.merge(s);
        assert_eq!(merged.mismatches, (FINDINGS_CAP + 10) as u64);
        assert_eq!(merged.findings.len(), FINDINGS_CAP);
    }

    #[test]
    fn summary_serializes_round_trip() {
        let mut s = AuditSummary::new(AuditLevel::Full);
        s.layers_checked = 3;
        s.record(AuditError::MergeDivergence {
            layer: "FC1".to_string(),
            threads: 2,
        });
        let json = serde_json::to_string(&s).expect("serialize");
        let back: AuditSummary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let prep = prepared();
        let inputs = SimInputs::hpca22(8);
        let report = simulate_layer_prepared(&inputs, Policy::ptb(), &prep);
        let run = || {
            let mut s = AuditSummary::new(AuditLevel::Sample);
            audit_layer(
                &inputs,
                Policy::ptb(),
                &prep,
                "CONV1",
                &report,
                AuditLevel::Sample,
                &mut s,
            );
            s
        };
        assert_eq!(run(), run());
    }
}

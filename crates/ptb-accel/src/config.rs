//! Simulator inputs (Table III of the paper) and scheduling policies.

use serde::{Deserialize, Serialize};
use systolic_sim::{ArchConfig, EnergyModel};

/// Which accelerator/schedule to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// The paper's contribution: parallel time batching, optionally with
    /// StSAP packing of non-bursting neurons.
    Ptb {
        /// Enable StSAP pair packing (Section IV-D).
        stsap: bool,
    },
    /// The paper's evaluation baseline \[14\]: temporal tiling across the
    /// array columns (each column one time point), dense streaming with
    /// no sparsity handling, weights refetched per column group.
    BaselineTemporal,
    /// The conventional time-serial SNN accelerator (Fig. 7a): one time
    /// point at a time, columns used spatially, weights refetched every
    /// time point ("alternating access").
    TimeSerial,
    /// A non-spiking ANN accelerator running the same layer once with
    /// dense 8-bit activations and MAC PEs (the Fig. 12(b) comparator).
    Ann,
    /// An event-driven time-serial SNN accelerator in the
    /// Minitaur/TrueNorth class (\[15, 34, 35\], Table II's "Ref*"):
    /// processes one time point at a time, fetches weights and inputs
    /// only for neurons that actually fire (limited sparsity handling)
    /// but has no temporal parallelism and refetches a neuron's weights
    /// at every time point it fires — the weight-amortization foil for
    /// the Fig. 12(b) sparsity-scaling study.
    EventDriven,
}

impl Policy {
    /// PTB without StSAP.
    pub fn ptb() -> Self {
        Policy::Ptb { stsap: false }
    }

    /// PTB with StSAP packing.
    pub fn ptb_with_stsap() -> Self {
        Policy::Ptb { stsap: true }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Ptb { stsap: false } => "PTB",
            Policy::Ptb { stsap: true } => "PTB+StSAP",
            Policy::BaselineTemporal => "baseline[14]",
            Policy::TimeSerial => "time-serial",
            Policy::Ann => "ANN",
            Policy::EventDriven => "event-driven",
        }
    }

    /// Every policy, in the canonical comparison order used by the
    /// experiment binaries and the service.
    pub fn all() -> [Policy; 6] {
        [
            Policy::ptb(),
            Policy::ptb_with_stsap(),
            Policy::BaselineTemporal,
            Policy::TimeSerial,
            Policy::Ann,
            Policy::EventDriven,
        ]
    }

    /// Parses a [`Policy::label`] string back into a policy
    /// (case-insensitive). `None` for unrecognized labels, so callers
    /// taking labels from the outside (CLI flags, service requests) can
    /// reject them with a proper error instead of a panic.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all()
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(label))
    }
}

/// The user-specified simulator inputs of Table III: architecture
/// configuration, memory configuration (inside [`ArchConfig`]), energy
/// constants, and the time-window size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimInputs {
    /// Array and memory configuration (Table IV).
    pub arch: ArchConfig,
    /// Per-access energy constants.
    pub energy: EnergyModel,
    /// Time-window size `TWS` (1 = per-time-point processing).
    pub tw_size: u32,
    /// Worker threads for the simulator's position scan. `1` (the
    /// default) is the serial walk; any value produces a bit-identical
    /// [`crate::report::LayerReport`] because the scan only accumulates
    /// integer tallies, merged in chunk order (see `sim` module docs).
    pub threads: usize,
}

impl SimInputs {
    /// The paper's default setup (Table IV architecture, 32 nm energies)
    /// at the given time-window size.
    ///
    /// # Panics
    ///
    /// Panics if `tw_size` is outside `1..=64` or exceeds the PE
    /// scratchpad's psum capacity.
    pub fn hpca22(tw_size: u32) -> Self {
        let inputs = SimInputs {
            arch: ArchConfig::hpca22(),
            energy: EnergyModel::cacti_32nm(),
            tw_size,
            threads: 1,
        };
        inputs.assert_valid();
        inputs
    }

    /// Returns a copy that fans the simulator's position scan across
    /// `threads` workers. Reports are identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be nonzero");
        self.threads = threads;
        self
    }

    /// Checks the time-window size against the hardware limits: one
    /// packed spike word (≤ 64 bits) and the scratchpad's psum slots.
    ///
    /// # Panics
    ///
    /// Panics on violation; construction sites call this.
    pub fn assert_valid(&self) {
        assert!(
            (1..=64).contains(&self.tw_size),
            "time-window size must be in 1..=64 (one packed spike word)"
        );
        assert!(
            u64::from(self.tw_size) <= self.arch.psum_slots(),
            "time-window size {} exceeds the scratchpad's {} psum slots",
            self.tw_size,
            self.arch.psum_slots()
        );
        assert!(self.threads >= 1, "thread count must be nonzero");
        self.arch.validate().expect("architecture must be valid");
    }

    /// The candidate TW sizes swept throughout the evaluation
    /// (Figs. 9–11): powers of two from 1 to 64.
    pub fn tw_sweep() -> [u32; 7] {
        [1, 2, 4, 8, 16, 32, 64]
    }

    /// Effective L1 capacity available to the weight partition, in bits.
    ///
    /// The L1 is double-buffered (Table IV), halving the usable space;
    /// half of that is assigned to weights, the rest to input spikes and
    /// membrane staging (the paper partitions each level per data type).
    pub fn l1_weight_capacity_bits(&self) -> u64 {
        self.arch.l1_bytes * 8 / 4
    }

    /// Effective global-buffer capacity for the weight partition, bits
    /// (double-buffered, half assigned to weights).
    pub fn gb_weight_capacity_bits(&self) -> u64 {
        self.arch.global_buffer_bytes * 8 / 4
    }

    /// Effective global-buffer capacity for input spikes, bits.
    pub fn gb_input_capacity_bits(&self) -> u64 {
        self.arch.global_buffer_bytes * 8 / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca22_defaults() {
        let s = SimInputs::hpca22(8);
        assert_eq!(s.tw_size, 8);
        assert_eq!(s.arch.array.pe_count(), 128);
        assert_eq!(s.threads, 1, "default is the serial walk");
        s.assert_valid();
    }

    #[test]
    fn with_threads_sets_worker_count() {
        let s = SimInputs::hpca22(8).with_threads(4);
        assert_eq!(s.threads, 4);
        s.assert_valid();
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        SimInputs::hpca22(8).with_threads(0);
    }

    #[test]
    #[should_panic]
    fn zero_tw_rejected() {
        SimInputs::hpca22(0);
    }

    #[test]
    #[should_panic]
    fn oversized_tw_rejected() {
        SimInputs::hpca22(65);
    }

    #[test]
    fn sweep_is_sorted_powers_of_two() {
        let sweep = SimInputs::tw_sweep();
        assert!(sweep.windows(2).all(|w| w[1] == w[0] * 2));
        for tw in sweep {
            SimInputs::hpca22(tw).assert_valid();
        }
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels = [
            Policy::ptb().label(),
            Policy::ptb_with_stsap().label(),
            Policy::BaselineTemporal.label(),
            Policy::TimeSerial.label(),
            Policy::Ann.label(),
            Policy::EventDriven.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn capacity_partitions_are_quarters() {
        let s = SimInputs::hpca22(8);
        assert_eq!(s.l1_weight_capacity_bits(), 2048 * 2);
        assert_eq!(s.gb_weight_capacity_bits(), 54 * 1024 * 2);
    }
}

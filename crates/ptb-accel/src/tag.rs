//! TB-tags and neuron classification (Section IV-B, Fig. 5c).
//!
//! A TB-tag is one bit per time window: set iff the neuron spikes
//! anywhere inside that window. Tags drive everything sparsity-related:
//! silent neurons are never fetched, bursting neurons stream plainly,
//! and non-bursting neurons are candidates for StSAP packing.

use serde::{Deserialize, Serialize};
use snn_core::spike::SpikeTensor;

use crate::window::WindowPartition;

/// Classification of a pre-synaptic neuron by its TB-tag (Fig. 5c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeuronClass {
    /// All-zero tag: never fetched, never scheduled.
    Silent,
    /// All-ones tag: streams plainly (packing it would gain nothing).
    Bursting,
    /// Mixed tag: StSAP packing candidate.
    NonBursting,
}

/// A neuron's TB-tag over the full time stride: bit `w` set iff the
/// neuron fires anywhere in window `w`.
///
/// ```
/// use ptb_accel::tag::{TbTag, NeuronClass};
/// use ptb_accel::window::WindowPartition;
/// use snn_core::spike::SpikeTensor;
///
/// let mut s = SpikeTensor::new(1, 32);
/// s.set(0, 9, true);   // window 1 of 4 (TWS = 8)
/// let tag = TbTag::from_spikes(&s, 0, WindowPartition::new(32, 8));
/// assert!(tag.window(1));
/// assert!(!tag.window(0));
/// assert_eq!(tag.classify(), NeuronClass::NonBursting);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TbTag {
    num_windows: usize,
    words: Vec<u64>,
}

impl TbTag {
    /// Builds the tag of `neuron` in `spikes` under `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition's period exceeds the tensor's, or the
    /// neuron index is out of range.
    pub fn from_spikes(spikes: &SpikeTensor, neuron: usize, partition: WindowPartition) -> Self {
        assert!(partition.timesteps() <= spikes.timesteps());
        let n = partition.num_windows();
        let mut words = vec![0u64; n.div_ceil(64)];
        for (w, s, e) in partition.iter() {
            if spikes.popcount_range(neuron, s, e) > 0 {
                words[w / 64] |= 1 << (w % 64);
            }
        }
        TbTag {
            num_windows: n,
            words,
        }
    }

    /// Builds a tag directly from a bit predicate (mainly for tests).
    pub fn from_fn(num_windows: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = vec![0u64; num_windows.div_ceil(64)];
        for w in 0..num_windows {
            if f(w) {
                words[w / 64] |= 1 << (w % 64);
            }
        }
        TbTag { num_windows, words }
    }

    /// Number of windows the tag covers.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Whether window `w`'s bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn window(&self, w: usize) -> bool {
        assert!(w < self.num_windows);
        self.words[w / 64] & (1 << (w % 64)) != 0
    }

    /// Number of active windows (TBs this neuron generates).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Classifies the neuron per Fig. 5(c).
    pub fn classify(&self) -> NeuronClass {
        match self.count_ones() as usize {
            0 => NeuronClass::Silent,
            n if n == self.num_windows => NeuronClass::Bursting,
            _ => NeuronClass::NonBursting,
        }
    }

    /// True if the two tags have no common active window — the StSAP
    /// packability condition.
    ///
    /// # Panics
    ///
    /// Panics if the tags cover different window counts.
    pub fn disjoint_with(&self, other: &TbTag) -> bool {
        assert_eq!(self.num_windows, other.num_windows);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if `other` is the exact 1's complement of this tag.
    pub fn is_complement_of(&self, other: &TbTag) -> bool {
        self.disjoint_with(other)
            && (self.count_ones() + other.count_ones()) as usize == self.num_windows
    }

    /// Extracts windows `[w0, w1)` (at most 128) as a little-endian
    /// mask — the *tile tag* used when scheduling one column tile.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or wider than 128 windows.
    pub fn slice_mask(&self, w0: usize, w1: usize) -> u128 {
        assert!(w0 <= w1 && w1 <= self.num_windows);
        assert!(w1 - w0 <= 128, "tile tags are at most 128 windows");
        let mut out = 0u128;
        for (i, w) in (w0..w1).enumerate() {
            if self.words[w / 64] & (1 << (w % 64)) != 0 {
                out |= 1 << i;
            }
        }
        out
    }
}

/// Computes the tags of every neuron in `spikes` under `partition`.
pub fn tags_of_layer(spikes: &SpikeTensor, partition: WindowPartition) -> Vec<TbTag> {
    (0..spikes.neurons())
        .map(|n| TbTag::from_spikes(spikes, n, partition))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(bits: &[bool]) -> TbTag {
        TbTag::from_fn(bits.len(), |w| bits[w])
    }

    #[test]
    fn classification_matches_fig5c() {
        assert_eq!(tag(&[false; 4]).classify(), NeuronClass::Silent);
        assert_eq!(tag(&[true; 4]).classify(), NeuronClass::Bursting);
        assert_eq!(
            tag(&[true, false, true, false]).classify(),
            NeuronClass::NonBursting
        );
    }

    #[test]
    fn from_spikes_marks_active_windows() {
        let mut s = SpikeTensor::new(2, 40);
        s.set(0, 0, true);
        s.set(0, 39, true); // partial last window (TWS=16 -> windows 0..3)
        let t = TbTag::from_spikes(&s, 0, WindowPartition::new(40, 16));
        assert_eq!(t.num_windows(), 3);
        assert!(t.window(0));
        assert!(!t.window(1));
        assert!(t.window(2));
        let silent = TbTag::from_spikes(&s, 1, WindowPartition::new(40, 16));
        assert_eq!(silent.classify(), NeuronClass::Silent);
    }

    #[test]
    fn disjoint_and_complement() {
        let a = tag(&[true, false, true, false]);
        let b = tag(&[false, true, false, true]);
        let c = tag(&[false, true, false, false]);
        assert!(a.disjoint_with(&b));
        assert!(a.is_complement_of(&b));
        assert!(a.disjoint_with(&c));
        assert!(!a.is_complement_of(&c));
        assert!(!b.disjoint_with(&c));
    }

    #[test]
    fn slice_mask_extracts_tile() {
        let t = TbTag::from_fn(100, |w| w % 3 == 0);
        let m = t.slice_mask(9, 17); // windows 9..17: active at 9, 12, 15
        assert_eq!(m, 0b0100_1001);
        assert_eq!(t.slice_mask(1, 1), 0);
    }

    #[test]
    fn slice_mask_straddles_words() {
        let t = TbTag::from_fn(130, |w| w == 63 || w == 64 || w == 129);
        assert_eq!(t.slice_mask(63, 65), 0b11);
        assert_eq!(t.slice_mask(120, 130), 1 << 9);
    }

    #[test]
    fn tags_of_layer_covers_all_neurons() {
        let s = SpikeTensor::from_fn(5, 24, |n, t| n == 2 && t < 8);
        let tags = tags_of_layer(&s, WindowPartition::new(24, 8));
        assert_eq!(tags.len(), 5);
        assert_eq!(tags[2].classify(), NeuronClass::NonBursting);
        assert_eq!(tags[0].classify(), NeuronClass::Silent);
    }

    #[test]
    fn count_ones_over_long_tags() {
        let t = TbTag::from_fn(300, |w| w % 2 == 0);
        assert_eq!(t.count_ones(), 150);
    }
}

//! Time-window partitioning of the operational period (Fig. 5c).
//!
//! The *time stride* (TS) — the full range of `T` time points the SNN
//! operates over — is split into windows of `TWS` consecutive time
//! points. The last window may be partial, which is the source of the
//! end-of-period under-utilization the paper notes in Section VI-B2.

use serde::{Deserialize, Serialize};

/// A partition of `timesteps` time points into windows of size
/// `tw_size`.
///
/// ```
/// use ptb_accel::window::WindowPartition;
/// let p = WindowPartition::new(300, 8);
/// assert_eq!(p.num_windows(), 38);
/// assert_eq!(p.window_range(37), (296, 300)); // partial tail window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowPartition {
    timesteps: usize,
    tw_size: usize,
}

impl WindowPartition {
    /// Creates a partition.
    ///
    /// # Panics
    ///
    /// Panics if `tw_size` is zero or `timesteps` is zero.
    pub fn new(timesteps: usize, tw_size: usize) -> Self {
        assert!(tw_size > 0, "time-window size must be nonzero");
        assert!(timesteps > 0, "operational period must be nonzero");
        WindowPartition { timesteps, tw_size }
    }

    /// Total time points `T`.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Window size `TWS`.
    pub fn tw_size(&self) -> usize {
        self.tw_size
    }

    /// Number of windows, `ceil(T / TWS)`.
    pub fn num_windows(&self) -> usize {
        self.timesteps.div_ceil(self.tw_size)
    }

    /// Half-open time range `[start, end)` of window `w`, clamped at the
    /// period end.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn window_range(&self, w: usize) -> (usize, usize) {
        assert!(w < self.num_windows(), "window {w} out of range");
        let start = w * self.tw_size;
        (start, (start + self.tw_size).min(self.timesteps))
    }

    /// Length of window `w` (equal to `TWS` except possibly the last).
    pub fn window_len(&self, w: usize) -> usize {
        let (s, e) = self.window_range(w);
        e - s
    }

    /// Iterates over `(window_index, start, end)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.num_windows()).map(move |w| {
            let (s, e) = self.window_range(w);
            (w, s, e)
        })
    }

    /// Splits the windows into *column tiles* of `cols` windows each —
    /// the group of TWs one array iteration processes simultaneously.
    /// Returns `(first_window, last_window_exclusive)` pairs.
    pub fn column_tiles(&self, cols: usize) -> Vec<(usize, usize)> {
        assert!(cols > 0, "column tile width must be nonzero");
        let n = self.num_windows();
        (0..n.div_ceil(cols))
            .map(|i| (i * cols, ((i + 1) * cols).min(n)))
            .collect()
    }

    /// Half-open time span `[start, end)` covered by the column tile
    /// `(w0, w1)`.
    pub fn tile_span(&self, w0: usize, w1: usize) -> (usize, usize) {
        assert!(w0 < w1 && w1 <= self.num_windows());
        (self.window_range(w0).0, self.window_range(w1 - 1).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition() {
        let p = WindowPartition::new(64, 8);
        assert_eq!(p.num_windows(), 8);
        assert_eq!(p.window_range(0), (0, 8));
        assert_eq!(p.window_range(7), (56, 64));
        assert!(p.iter().all(|(w, s, e)| e - s == 8 && s == w * 8));
    }

    #[test]
    fn partial_tail_window() {
        let p = WindowPartition::new(100, 8);
        assert_eq!(p.num_windows(), 13);
        assert_eq!(p.window_range(12), (96, 100));
        assert_eq!(p.window_len(12), 4);
        assert_eq!(p.window_len(0), 8);
    }

    #[test]
    fn tw_of_one_is_per_timepoint() {
        let p = WindowPartition::new(10, 1);
        assert_eq!(p.num_windows(), 10);
        assert_eq!(p.window_range(3), (3, 4));
    }

    #[test]
    fn tw_larger_than_period() {
        let p = WindowPartition::new(10, 64);
        assert_eq!(p.num_windows(), 1);
        assert_eq!(p.window_range(0), (0, 10));
    }

    #[test]
    fn column_tiles_cover_all_windows() {
        let p = WindowPartition::new(300, 8); // 38 windows
        let tiles = p.column_tiles(8);
        assert_eq!(tiles.len(), 5);
        assert_eq!(tiles[0], (0, 8));
        assert_eq!(tiles[4], (32, 38));
        let covered: usize = tiles.iter().map(|&(a, b)| b - a).sum();
        assert_eq!(covered, 38);
    }

    #[test]
    fn tile_span_times() {
        let p = WindowPartition::new(300, 8);
        assert_eq!(p.tile_span(0, 8), (0, 64));
        assert_eq!(p.tile_span(32, 38), (256, 300));
    }

    #[test]
    #[should_panic]
    fn window_out_of_range_panics() {
        WindowPartition::new(16, 8).window_range(2);
    }
}

//! Executable PTB schedules: from a layer and its input activity to an
//! explicit per-iteration stream, executed on the functional
//! [`SystolicEngine`] — producing *real* output spikes, not just access
//! counts.
//!
//! This is the strongest correctness artifact of the reproduction: the
//! exact dataflow the analytic simulator costs (rows = output channels,
//! columns = time windows, silent-neuron skipping, StSAP pair merging
//! with per-column weight selection, Step B replay with membrane
//! carry-over across column tiles) is *executed*, and its output is
//! asserted bit-identical to the functional reference
//! ([`snn_core::layer::SpikingConv`]) by the test suite.

use snn_core::layer::SpikingConv;
use snn_core::spike::SpikeTensor;
use snn_core::{Result, SnnError};
use systolic_sim::array::{ArrayDims, PairData, StreamEntry, SystolicEngine};

use crate::stsap::pack_tile;
use crate::window::WindowPartition;

/// Executes PTB schedules on the functional systolic engine.
///
/// ```
/// use ptb_accel::schedule::PtbExecutor;
/// use snn_core::layer::SpikingConv;
/// use snn_core::neuron::NeuronConfig;
/// use snn_core::shape::ConvShape;
/// use snn_core::spike::SpikeTensor;
/// use systolic_sim::array::ArrayDims;
///
/// let shape = ConvShape::new(6, 3, 2, 4, 1).unwrap();
/// let layer = SpikingConv::from_fn(shape, NeuronConfig::if_model(0.75), |m, c, i, j| {
///     ((m + c + i + j) % 5) as f32 * 0.25
/// });
/// let input = SpikeTensor::from_fn(shape.ifmap_neurons(), 32, |n, t| (n + t) % 6 == 0);
/// let exec = PtbExecutor::new(ArrayDims::new(4, 4), 8, true);
/// let scheduled = exec.run_conv(&layer, &input).unwrap();
/// assert_eq!(scheduled, layer.forward(&input).unwrap()); // bit-exact
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PtbExecutor {
    dims: ArrayDims,
    tw_size: u32,
    stsap: bool,
}

/// Execution statistics of one scheduled layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Array iterations issued.
    pub iterations: u64,
    /// Streaming slots issued (post-StSAP).
    pub slots: u64,
    /// Raw entries before packing.
    pub entries: u64,
    /// Useful accumulate operations performed by the engine.
    pub useful_ops: u64,
}

impl PtbExecutor {
    /// Creates an executor for the given array geometry and TW size.
    ///
    /// # Panics
    ///
    /// Panics if `tw_size` is outside `1..=64`.
    pub fn new(dims: ArrayDims, tw_size: u32, stsap: bool) -> Self {
        assert!((1..=64).contains(&tw_size), "tw size must be in 1..=64");
        PtbExecutor {
            dims,
            tw_size,
            stsap,
        }
    }

    /// Runs the layer under the PTB schedule, returning the output
    /// spikes (bit-identical to [`SpikingConv::forward`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::DimensionMismatch`] if the input does not
    /// match the layer's ifmap.
    pub fn run_conv(&self, layer: &SpikingConv, input: &SpikeTensor) -> Result<SpikeTensor> {
        self.run_conv_with_stats(layer, input).map(|(out, _)| out)
    }

    /// Like [`PtbExecutor::run_conv`] but also returns execution
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::DimensionMismatch`] if the input does not
    /// match the layer's ifmap.
    pub fn run_conv_with_stats(
        &self,
        layer: &SpikingConv,
        input: &SpikeTensor,
    ) -> Result<(SpikeTensor, ExecStats)> {
        let shape = layer.shape();
        if input.neurons() != shape.ifmap_neurons() {
            return Err(SnnError::DimensionMismatch {
                expected: shape.ifmap_neurons(),
                actual: input.neurons(),
                what: "neurons",
            });
        }
        let t = input.timesteps();
        if t == 0 {
            return Ok((
                SpikeTensor::new(shape.ofmap_neurons(), 0),
                ExecStats::default(),
            ));
        }
        let part = WindowPartition::new(t, self.tw_size as usize);
        let engine = SystolicEngine::new(self.dims, self.tw_size);
        let rows = self.dims.rows() as usize;
        let cols = self.dims.cols() as usize;
        let m = shape.out_channels() as usize;
        let e = shape.ofmap_side();
        let mut out = SpikeTensor::new(shape.ofmap_neurons(), t);
        let mut stats = ExecStats::default();

        for x in 0..e {
            for y in 0..e {
                let taps = shape.receptive_field_taps(x, y);
                // Full psum timeline for every output channel at (x, y).
                let mut psums = vec![vec![0.0f32; t]; m];
                for (w0, w1) in part.column_tiles(cols) {
                    let nw = w1 - w0;
                    let full: u128 = if nw == 128 { u128::MAX } else { (1 << nw) - 1 };
                    // Active taps in this span, with tags and words.
                    let mut tags: Vec<u128> = Vec::new();
                    let mut active: Vec<usize> = Vec::new(); // tap indices
                    let mut words: Vec<Vec<u64>> = Vec::new();
                    for (ti, tap) in taps.iter().enumerate() {
                        let mut tag = 0u128;
                        let mut w = vec![0u64; nw];
                        for (i, win) in (w0..w1).enumerate() {
                            let (s, epoch) = part.window_range(win);
                            let word = input.spike_word(tap.input_index, s, epoch - s);
                            if word != 0 {
                                tag |= 1 << i;
                            }
                            w[i] = word;
                        }
                        if tag != 0 {
                            tags.push(tag);
                            active.push(ti);
                            words.push(w);
                        }
                    }
                    if tags.is_empty() {
                        continue;
                    }
                    stats.entries += tags.len() as u64;

                    // Row tiles over output channels.
                    for m0 in (0..m).step_by(rows) {
                        let weight_of = |ti: usize, r: usize| -> f32 {
                            let tap = &taps[active[ti]];
                            if m0 + r < m {
                                layer.weights()[[
                                    m0 + r,
                                    tap.channel as usize,
                                    tap.kernel_row as usize,
                                    tap.kernel_col as usize,
                                ]]
                            } else {
                                0.0 // idle rows beyond the channel count
                            }
                        };
                        let mut entries: Vec<StreamEntry> = Vec::new();
                        let push_single = |ti: usize, entries: &mut Vec<StreamEntry>| {
                            let mut col_spikes = vec![0u64; cols];
                            col_spikes[..nw].copy_from_slice(&words[ti]);
                            entries.push(StreamEntry::single(
                                (0..rows).map(|r| weight_of(ti, r)).collect(),
                                col_spikes,
                            ));
                        };
                        if self.stsap {
                            let packed = pack_tile(&tags, full);
                            for slot in &packed.slots {
                                match slot.second {
                                    None => push_single(slot.first, &mut entries),
                                    Some(second) => {
                                        // Merged words: tags are disjoint,
                                        // so per column at most one member
                                        // contributes.
                                        let mut col_spikes = vec![0u64; cols];
                                        for i in 0..nw {
                                            col_spikes[i] = words[slot.first][i] | words[second][i];
                                        }
                                        entries.push(StreamEntry {
                                            row_weights: (0..rows)
                                                .map(|r| weight_of(slot.first, r))
                                                .collect(),
                                            col_spikes,
                                            pair: Some(PairData {
                                                row_weights: (0..rows)
                                                    .map(|r| weight_of(second, r))
                                                    .collect(),
                                                col_select: tags[second],
                                            }),
                                        });
                                    }
                                }
                            }
                        } else {
                            for ti in 0..tags.len() {
                                push_single(ti, &mut entries);
                            }
                        }
                        stats.slots += entries.len() as u64;
                        stats.iterations += 1;
                        let result = engine.run(&entries);
                        stats.useful_ops += result.useful_ops;
                        // Scatter the engine's psums into the timeline.
                        for (r, row_psums) in result.psums.iter().enumerate() {
                            if m0 + r >= m {
                                break;
                            }
                            for (i, win) in (w0..w1).enumerate() {
                                let (s, epoch) = part.window_range(win);
                                for (k, tp) in (s..epoch).enumerate() {
                                    psums[m0 + r][tp] += row_psums[i][k];
                                }
                            }
                        }
                    }
                }
                // Step B: serial membrane replay per output neuron.
                for (mc, timeline) in psums.iter().enumerate() {
                    let mut v = 0.0f32;
                    let idx = shape.ofmap_index(mc as u32, x, y);
                    for (tp, &p) in timeline.iter().enumerate() {
                        if layer.neuron().step(&mut v, p) {
                            out.set(idx, tp, true);
                        }
                    }
                }
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::neuron::NeuronConfig;
    use snn_core::shape::ConvShape;

    fn test_layer(leak: f32) -> (SpikingConv, SpikeTensor) {
        let shape = ConvShape::with_padding(6, 3, 3, 5, 1, 1).unwrap();
        let layer = SpikingConv::from_fn(shape, NeuronConfig::lif(0.7, leak), |m, c, i, j| {
            ((m * 11 + c * 7 + i * 3 + j) % 13) as f32 / 16.0 - 0.25
        });
        let input =
            SpikeTensor::from_fn(shape.ifmap_neurons(), 50, |n, t| (n * 17 + t * 5) % 9 == 0);
        (layer, input)
    }

    #[test]
    fn scheduled_execution_is_bit_exact_plain() {
        let (layer, input) = test_layer(0.02);
        let reference = layer.forward(&input).unwrap();
        for tw in [1u32, 4, 8, 16] {
            let exec = PtbExecutor::new(ArrayDims::new(4, 4), tw, false);
            assert_eq!(exec.run_conv(&layer, &input).unwrap(), reference, "tw={tw}");
        }
    }

    #[test]
    fn scheduled_execution_is_bit_exact_with_stsap() {
        let (layer, input) = test_layer(0.0);
        let reference = layer.forward(&input).unwrap();
        for tw in [1u32, 2, 8] {
            for dims in [
                ArrayDims::new(2, 8),
                ArrayDims::new(8, 2),
                ArrayDims::new(16, 8),
            ] {
                let exec = PtbExecutor::new(dims, tw, true);
                assert_eq!(
                    exec.run_conv(&layer, &input).unwrap(),
                    reference,
                    "tw={tw} dims={dims}"
                );
            }
        }
    }

    #[test]
    fn stsap_reduces_slots_in_execution() {
        let (layer, input) = test_layer(0.0);
        let plain = PtbExecutor::new(ArrayDims::new(4, 4), 4, false)
            .run_conv_with_stats(&layer, &input)
            .unwrap()
            .1;
        let packed = PtbExecutor::new(ArrayDims::new(4, 4), 4, true)
            .run_conv_with_stats(&layer, &input)
            .unwrap()
            .1;
        assert!(
            packed.slots < plain.slots,
            "{} !< {}",
            packed.slots,
            plain.slots
        );
        assert_eq!(packed.useful_ops, plain.useful_ops, "same actual work");
        assert_eq!(packed.entries, plain.entries);
    }

    #[test]
    fn silent_input_produces_silent_output_and_no_slots() {
        let (layer, _) = test_layer(0.0);
        let silent = SpikeTensor::new(layer.shape().ifmap_neurons(), 20);
        let (out, stats) = PtbExecutor::new(ArrayDims::new(4, 4), 8, true)
            .run_conv_with_stats(&layer, &silent)
            .unwrap();
        assert_eq!(out.total_spikes(), 0);
        assert_eq!(stats.slots, 0);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn rejects_mismatched_input() {
        let (layer, _) = test_layer(0.0);
        let exec = PtbExecutor::new(ArrayDims::new(4, 4), 8, false);
        assert!(exec.run_conv(&layer, &SpikeTensor::new(3, 10)).is_err());
    }

    #[test]
    fn useful_ops_match_spike_weighted_work() {
        // Every spike of every in-range tap triggers one accumulate per
        // *array row* (idle rows still count as occupied but weight 0.0
        // contributes nothing to psums; useful counts spike-bit hits).
        let (layer, input) = test_layer(0.0);
        let rows = 4u64;
        let stats = PtbExecutor::new(ArrayDims::new(4, 4), 8, false)
            .run_conv_with_stats(&layer, &input)
            .unwrap()
            .1;
        let shape = layer.shape();
        let mut spikes_in_rf = 0u64;
        for x in 0..shape.ofmap_side() {
            for y in 0..shape.ofmap_side() {
                for n in shape.receptive_field_indices(x, y) {
                    spikes_in_rf += u64::from(input.popcount_range(n, 0, 50));
                }
            }
        }
        // 5 output channels over 4-row tiles -> 2 tiles, second half idle.
        let row_tiles = (shape.out_channels() as u64).div_ceil(rows);
        assert_eq!(stats.useful_ops, spikes_in_rf * rows * row_tiles);
    }
}

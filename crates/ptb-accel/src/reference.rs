//! Bit-exact functional validation of the PTB decomposition.
//!
//! Section VII argues PTB is *general* because Step A (synaptic input
//! integration, Eq. 7) needs no post-synaptic state and can therefore be
//! batched over time without violating causality, with Step B (membrane
//! update + firing, Eq. 8) replayed serially afterwards. This module
//! implements exactly that split on top of the functional
//! [`systolic_sim::array::SystolicEngine`], so the property tests can
//! assert the batched result is **bit-identical** to the serial
//! reference dynamics (Eqs. 1–3, as implemented by
//! [`snn_core::neuron::NeuronConfig`]).

use snn_core::neuron::NeuronConfig;
use snn_core::spike::SpikeTensor;
use systolic_sim::array::{ArrayDims, StreamEntry, SystolicEngine};

use crate::window::WindowPartition;

/// Runs one post-synaptic neuron the PTB way: Step A batched per time
/// window on a 1-row systolic array (columns = windows of one column
/// tile), Step B serially across the whole period. Returns the output
/// spike train.
///
/// `weights[j]` is the synaptic weight from pre-synaptic neuron `j`;
/// `spikes` holds the pre-synaptic activity (`weights.len()` neurons).
///
/// # Panics
///
/// Panics if dimensions disagree, `tw_size` is outside `1..=64`, or
/// `cols` is zero.
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
pub fn batched_neuron_forward(
    weights: &[f32],
    spikes: &SpikeTensor,
    neuron: NeuronConfig,
    tw_size: u32,
    cols: u32,
) -> Vec<bool> {
    assert_eq!(
        weights.len(),
        spikes.neurons(),
        "one weight per pre-synaptic neuron"
    );
    assert!(cols > 0, "need at least one array column");
    let t = spikes.timesteps();
    let part = WindowPartition::new(t, tw_size as usize);
    let engine = SystolicEngine::new(ArrayDims::new(1, cols), tw_size);

    // Step A: batched synaptic integration, one column tile at a time.
    let mut psums = vec![0.0f32; t];
    for (w0, w1) in part.column_tiles(cols as usize) {
        let nw = w1 - w0;
        let mut entries = Vec::new();
        for j in 0..weights.len() {
            let mut col_spikes = vec![0u64; cols as usize];
            let mut any = false;
            for (i, w) in (w0..w1).enumerate() {
                let (s, e) = part.window_range(w);
                let word = spikes.spike_word(j, s, e - s);
                if word != 0 {
                    any = true;
                }
                col_spikes[i] = word;
            }
            if !any {
                continue; // silent-in-span neurons are skipped, as on hardware
            }
            entries.push(StreamEntry::single(vec![weights[j]], col_spikes));
        }
        let result = engine.run(&entries);
        for (i, w) in (w0..w1).enumerate() {
            let (s, e) = part.window_range(w);
            for (k, tp) in (s..e).enumerate() {
                psums[tp] = result.psums[0][i][k];
            }
        }
        let _ = nw;
    }

    // Step B: serial membrane update + conditional firing over the whole
    // period (Eq. 8), exactly the reference dynamics.
    neuron.run(&psums)
}

/// Runs a full *recurrent* spiking layer the PTB way: the feedforward
/// integration (Step A) is batched per time window exactly as in
/// [`batched_neuron_forward`], while the recurrent contributions — which
/// depend on the layer's own output spikes and therefore cannot be
/// pre-computed — are folded into the serial Step B replay. Validated
/// bit-exactly against [`snn_core::recurrent::SpikingRecurrentFc`],
/// which demonstrates the Fig. 12(c) claim that PTB extends to
/// recurrent layer structures without violating causality.
///
/// # Panics
///
/// Panics if dimensions disagree or `tw_size` is outside `1..=64`.
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
pub fn batched_recurrent_forward(
    layer: &snn_core::recurrent::SpikingRecurrentFc,
    input: &SpikeTensor,
    tw_size: u32,
    cols: u32,
) -> SpikeTensor {
    assert_eq!(input.neurons(), layer.inputs() as usize);
    let t = input.timesteps();
    let n_out = layer.outputs() as usize;
    let part = WindowPartition::new(t.max(1), tw_size as usize);
    let engine = SystolicEngine::new(ArrayDims::new(1, cols), tw_size);

    // Step A per output neuron: batched feedforward psums over windows.
    let mut ff_psums = vec![vec![0.0f32; t]; n_out];
    for (o, psums) in ff_psums.iter_mut().enumerate() {
        let weights: Vec<f32> = (0..layer.inputs())
            .map(|i| layer.ff_weight(o as u32, i))
            .collect();
        for (w0, w1) in part.column_tiles(cols as usize) {
            let mut entries = Vec::new();
            for j in 0..weights.len() {
                let mut col_spikes = vec![0u64; cols as usize];
                let mut any = false;
                for (i, w) in (w0..w1).enumerate() {
                    let (s, e) = part.window_range(w);
                    let word = input.spike_word(j, s, e - s);
                    any |= word != 0;
                    col_spikes[i] = word;
                }
                if any {
                    entries.push(StreamEntry::single(vec![weights[j]], col_spikes));
                }
            }
            let result = engine.run(&entries);
            for (i, w) in (w0..w1).enumerate() {
                let (s, e) = part.window_range(w);
                for (k, tp) in (s..e).enumerate() {
                    psums[tp] = result.psums[0][i][k];
                }
            }
        }
    }

    // Step B: serial replay with the recurrent term applied causally.
    let mut out = SpikeTensor::new(n_out, t);
    let mut membrane = vec![0.0f32; n_out];
    let mut prev = vec![false; n_out];
    for tp in 0..t {
        let mut next = vec![false; n_out];
        for o in 0..n_out {
            let mut p = ff_psums[o][tp];
            for (k, &fired) in prev.iter().enumerate() {
                if fired {
                    p += layer.rec_weight(o as u32, k as u32);
                }
            }
            if layer.neuron().step(&mut membrane[o], p) {
                out.set(o, tp, true);
                next[o] = true;
            }
        }
        prev = next;
    }
    out
}

/// Serial reference for the same neuron: integrate per time point
/// (Eq. 1) then step the membrane (Eqs. 2–3).
///
/// The integration walks each pre-synaptic neuron's packed spike words
/// and scatters weights at the *set* bits only — `O(spikes)` float
/// adds instead of a `neurons × T` bit probe. Each `psums[tp]` still
/// receives its weights in ascending-`j` order starting from `0.0`,
/// exactly the addition sequence of the original per-point
/// `filter(...).sum()`, so the floating-point result (and therefore
/// every audit replay verdict) is bit-identical.
pub fn serial_neuron_forward(
    weights: &[f32],
    spikes: &SpikeTensor,
    neuron: NeuronConfig,
) -> Vec<bool> {
    assert_eq!(weights.len(), spikes.neurons());
    let t = spikes.timesteps();
    let mut psums = vec![0.0f32; t];
    for (j, &w) in weights.iter().enumerate() {
        for (wi, &word) in spikes.neuron_words(j).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let tp = wi * 64 + word.trailing_zeros() as usize;
                psums[tp] += w;
                word &= word - 1;
            }
        }
    }
    neuron.run(&psums)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf_spikes(neurons: usize, t: usize, stride: usize) -> SpikeTensor {
        SpikeTensor::from_fn(neurons, t, |n, tp| (n * 5 + tp * 3) % stride == 0)
    }

    #[test]
    fn batched_equals_serial_lif() {
        let weights: Vec<f32> = (0..24).map(|i| (i as f32 - 12.0) / 10.0).collect();
        let spikes = rf_spikes(24, 50, 7);
        let neuron = NeuronConfig::lif(0.9, 0.05);
        for tws in [1, 2, 4, 8, 16, 64] {
            let batched = batched_neuron_forward(&weights, &spikes, neuron, tws, 8);
            let serial = serial_neuron_forward(&weights, &spikes, neuron);
            assert_eq!(batched, serial, "tws={tws}");
        }
    }

    #[test]
    fn batched_equals_serial_if_across_col_counts() {
        let weights: Vec<f32> = (0..16).map(|i| 0.07 * i as f32).collect();
        let spikes = rf_spikes(16, 37, 4); // non-multiple period
        let neuron = NeuronConfig::if_model(0.6);
        for cols in [1, 3, 8, 16] {
            let batched = batched_neuron_forward(&weights, &spikes, neuron, 4, cols);
            let serial = serial_neuron_forward(&weights, &spikes, neuron);
            assert_eq!(batched, serial, "cols={cols}");
        }
    }

    #[test]
    fn silent_receptive_field_never_fires() {
        let weights = vec![1.0; 8];
        let spikes = SpikeTensor::new(8, 30);
        let neuron = NeuronConfig::if_model(0.5);
        let out = batched_neuron_forward(&weights, &spikes, neuron, 8, 8);
        assert!(out.iter().all(|&s| !s));
    }

    #[test]
    fn dense_input_fires_when_weights_exceed_threshold() {
        let weights = vec![0.2; 8]; // 1.6 per time point
        let spikes = SpikeTensor::full(8, 20);
        let neuron = NeuronConfig::if_model(1.0);
        let out = batched_neuron_forward(&weights, &spikes, neuron, 4, 4);
        assert!(out.iter().all(|&s| s), "1.6 >= 1.0 every step");
        assert_eq!(out, serial_neuron_forward(&weights, &spikes, neuron));
    }

    #[test]
    fn batched_recurrent_equals_functional_layer() {
        use snn_core::recurrent::SpikingRecurrentFc;
        let mut layer = SpikingRecurrentFc::zeros(10, 6, NeuronConfig::lif(0.8, 0.03));
        for o in 0..6 {
            for i in 0..10 {
                *layer.ff_weight_mut(o, i) = ((o * 7 + i * 3) % 11) as f32 / 11.0 - 0.3;
            }
            for k in 0..6 {
                *layer.rec_weight_mut(o, k) = if (o + k) % 3 == 0 { -0.2 } else { 0.1 };
            }
        }
        let input = rf_spikes(10, 45, 5);
        let serial = layer.forward(&input).unwrap();
        for tws in [1u32, 4, 8, 32] {
            let batched = batched_recurrent_forward(&layer, &input, tws, 8);
            assert_eq!(batched, serial, "tws={tws}");
        }
    }

    #[test]
    fn batched_recurrent_self_excitation() {
        use snn_core::recurrent::SpikingRecurrentFc;
        let mut layer = SpikingRecurrentFc::zeros(1, 1, NeuronConfig::if_model(1.0));
        *layer.ff_weight_mut(0, 0) = 1.0;
        *layer.rec_weight_mut(0, 0) = 1.0;
        let mut input = SpikeTensor::new(1, 6);
        input.set(0, 0, true);
        let out = batched_recurrent_forward(&layer, &input, 4, 2);
        assert_eq!(out.fire_count(0), 6, "self-excitation sustains firing");
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_panic() {
        let spikes = SpikeTensor::new(4, 10);
        batched_neuron_forward(&[1.0; 3], &spikes, NeuronConfig::default(), 4, 4);
    }
}

//! Spatiotemporally-non-overlapping Spiking Activity Packing (StSAP) —
//! the greedy complement-packing algorithm of Section IV-D and Fig. 8.
//!
//! Given the *tile tags* (the TB-tag bits of the windows one array
//! iteration processes) of the neurons about to stream, StSAP pairs
//! neurons whose tags do not overlap: in every column (time window) at
//! most one member of the pair has activity, so the pair shares a single
//! streaming slot and PE idling drops. Per the paper, packing is greedy
//! — exact 1's complements first, then the nearest (densest) disjoint
//! tag — and at most two neurons combine.

use serde::{Deserialize, Serialize};

/// One scheduled streaming slot: a single neuron entry or an StSAP pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Index (into the caller's entry list) of the first neuron.
    pub first: usize,
    /// Index of the packed partner, if any.
    pub second: Option<usize>,
}

impl Slot {
    /// Number of neurons in the slot (1 or 2).
    pub fn len(&self) -> usize {
        1 + usize::from(self.second.is_some())
    }

    /// A slot is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of packing one column tile's entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackResult {
    /// Streaming slots after packing (order deterministic).
    pub slots: Vec<Slot>,
    /// Number of input entries before packing.
    pub entries_before: usize,
    /// Number of exact-complement pairs found.
    pub exact_pairs: usize,
    /// Number of merely-disjoint (nearest-complement) pairs found.
    pub near_pairs: usize,
}

impl PackResult {
    /// Streaming slots after packing.
    pub fn entries_after(&self) -> usize {
        self.slots.len()
    }

    /// Total pairs formed.
    pub fn pairs(&self) -> usize {
        self.exact_pairs + self.near_pairs
    }
}

/// Reusable working memory for [`pack_tile_with`].
///
/// One pack over `k` entries needs a sorted entry list, the derived
/// mask-class ranges, and a popcount-bucketed candidate index. The
/// simulator packs one tile per (output position × column tile) — tens
/// of thousands of calls per layer — so allocating those structures
/// fresh each call dominates the pack itself. A scratch is plain
/// buffers, cleared (not freed) between calls; each worker thread owns
/// one.
#[derive(Debug, Default)]
pub struct PackScratch {
    /// `(tag, entry index)` for packable entries, sorted ascending.
    entries: Vec<(u128, u32)>,
    /// Distinct-mask groups as `(mask, lo, hi)` ranges into `entries`.
    /// Consumption pops from `hi` (largest entry index first).
    groups: Vec<(u128, u32, u32)>,
    /// Pass-2 classes: pass-1 leftovers re-sorted densest-first.
    classes: Vec<(u128, u32, u32)>,
    /// `index[p]` = pass-2 class ids whose mask has `p` bits, ascending.
    index: Vec<Vec<u32>>,
}

/// Packs one column tile.
///
/// `tags[i]` is entry `i`'s tile tag: bit `w` set iff the neuron is
/// active in the tile's `w`-th window. `full_mask` has one bit per
/// window of the tile. Entries whose tag equals `full_mask` behave as
/// bursting for this tile and stay unpacked; zero tags are not
/// schedulable and must be filtered by the caller.
///
/// Allocates fresh working memory per call; hot loops should hold a
/// [`PackScratch`] and call [`pack_tile_with`] instead (same result).
///
/// # Panics
///
/// Panics if `full_mask` is zero, or any tag is zero or has bits outside
/// `full_mask`.
pub fn pack_tile(tags: &[u128], full_mask: u128) -> PackResult {
    pack_tile_with(&mut PackScratch::default(), tags, full_mask)
}

/// [`pack_tile`] with caller-owned working memory: bit-identical
/// result, no per-call allocation beyond the returned slots.
///
/// The algorithm is the greedy two-pass pairing of Section IV-D,
/// restructured from the original hash-bucketed form into ranges over
/// one sorted `(tag, index)` list — entries of a mask class are
/// contiguous and ascending, and "pop the largest index" becomes a
/// range shrink. Pass order is preserved exactly: pass 1 visits masks
/// ascending and pairs complement classes back-to-front; pass 2 visits
/// leftover classes densest-first and scans partners through a
/// popcount-bucketed index (a disjoint partner of a `p`-bit mask has at
/// most `width - p` bits, so whole buckets are skipped; exhausted
/// classes are dropped from a bucket the next time it is scanned). The
/// pairing order is identical to the naive popcount-sorted linear scan
/// (`reference::pack_tile_linear` pins this property-test-exactly);
/// only the search cost changes.
///
/// # Panics
///
/// As [`pack_tile`].
pub fn pack_tile_with(scratch: &mut PackScratch, tags: &[u128], full_mask: u128) -> PackResult {
    assert!(full_mask != 0, "tile must contain at least one window");
    let PackScratch {
        entries,
        groups,
        classes,
        index,
    } = scratch;
    let mut slots = Vec::with_capacity(tags.len());
    entries.clear();
    for (i, &t) in tags.iter().enumerate() {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
        if t == full_mask {
            slots.push(Slot {
                first: i,
                second: None,
            });
        } else {
            entries.push((t, i as u32));
        }
    }
    entries.sort_unstable();
    groups.clear();
    let mut s = 0;
    while s < entries.len() {
        let m = entries[s].0;
        let mut e = s + 1;
        while e < entries.len() && entries[e].0 == m {
            e += 1;
        }
        groups.push((m, s as u32, e as u32));
        s = e;
    }

    // Pass 1: exact 1's complements, masks ascending, each unordered
    // pair handled once; both classes consume their largest entry
    // indices first.
    let mut exact_pairs = 0usize;
    for gi in 0..groups.len() {
        let (m, lo, hi) = groups[gi];
        let comp = full_mask & !m;
        if m >= comp {
            continue;
        }
        if let Ok(gj) = groups.binary_search_by_key(&comp, |&(g, _, _)| g) {
            let (_, clo, chi) = groups[gj];
            let k = (hi - lo).min(chi - clo);
            for step in 0..k {
                let x = entries[(hi - 1 - step) as usize].1 as usize;
                let y = entries[(chi - 1 - step) as usize].1 as usize;
                slots.push(Slot {
                    first: x.min(y),
                    second: Some(x.max(y)),
                });
                exact_pairs += 1;
            }
            groups[gi].2 -= k;
            groups[gj].2 -= k;
        }
    }

    // Pass 2: nearest non-overlapping tags among the leftovers, greedily
    // from the densest tag down (Fig. 8c).
    classes.clear();
    classes.extend(groups.iter().copied().filter(|&(_, lo, hi)| hi > lo));
    classes.sort_unstable_by_key(|&(m, _, _)| (std::cmp::Reverse(m.count_ones()), m));
    let width = full_mask.count_ones() as usize;
    if index.len() < width + 1 {
        index.resize_with(width + 1, Vec::new);
    }
    for bucket in index.iter_mut().take(width + 1) {
        bucket.clear();
    }
    for (c, &(m, _, _)) in classes.iter().enumerate() {
        index[m.count_ones() as usize].push(c as u32);
    }
    let mut near_pairs = 0usize;
    for i in 0..classes.len() {
        let mi = classes[i].0;
        // A disjoint partner fits in the free bits; it also has no more
        // bits than `mi` (denser classes were handled as earlier `i`s).
        let partner_pc_cap = (mi.count_ones() as usize).min(width - mi.count_ones() as usize);
        while classes[i].2 > classes[i].1 {
            // Densest-first traversal: popcount buckets descending,
            // ascending class order within a bucket — the exact visit
            // order of the linear scan over the sorted classes.
            let mut best: Option<usize> = None;
            'search: for pc in (1..=partner_pc_cap).rev() {
                let bucket = &mut index[pc];
                bucket.retain(|&c| classes[c as usize].2 > classes[c as usize].1);
                for &c in bucket.iter() {
                    let c = c as usize;
                    if c > i && mi & classes[c].0 == 0 {
                        best = Some(c);
                        break 'search;
                    }
                }
            }
            match best {
                Some(j) => {
                    classes[i].2 -= 1;
                    let x = entries[classes[i].2 as usize].1 as usize;
                    classes[j].2 -= 1;
                    let y = entries[classes[j].2 as usize].1 as usize;
                    slots.push(Slot {
                        first: x.min(y),
                        second: Some(x.max(y)),
                    });
                    near_pairs += 1;
                }
                None => break,
            }
        }
    }
    // Whatever remains streams unpacked.
    for &(_, lo, hi) in classes.iter() {
        for e in lo..hi {
            slots.push(Slot {
                first: entries[e as usize].1 as usize,
                second: None,
            });
        }
    }

    PackResult {
        slots,
        entries_before: tags.len(),
        exact_pairs,
        near_pairs,
    }
}

/// Aggregate streaming cost of a packed tile, produced without
/// materializing the slot list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCost {
    /// Streaming slots after packing (`entries - pairs`).
    pub slots: u64,
    /// Exact-complement pairs formed.
    pub exact_pairs: u64,
    /// Merely-disjoint pairs formed.
    pub near_pairs: u64,
    /// Total stream beats: per slot, the busiest-column accumulate
    /// count floored at `min_beats`.
    pub beats: u64,
}

/// Reusable working memory for [`pack_stream_cost`] and
/// [`pack_count_cost`].
#[derive(Debug, Default)]
pub struct CostScratch {
    /// `buckets[m]` = busiest-window values of the entries whose tag is
    /// `m`, in entry order; pairing pops from the back (largest entry
    /// index first, like [`pack_tile_with`]'s range shrink).
    buckets: Vec<Vec<u16>>,
    /// `counts[m]` = live entry count of mask `m` ([`pack_count_cost`]
    /// only — pairing there never looks at individual entries).
    counts: Vec<u32>,
    /// Masks with a nonempty bucket this call (for sparse clearing).
    present: Vec<u32>,
    /// Pass-2 leftover masks, sorted densest-first.
    classes: Vec<u32>,
}

/// [`pack_tile_with`] + slot costing fused, for narrow tiles.
///
/// The packed slot list is only ever consumed to (a) count slots and
/// pairs and (b) sum per-slot stream beats, and a slot's beats depend
/// only on its busiest column: StSAP pairs have *disjoint* tags, so in
/// every column at most one member accumulates and the pair's busiest
/// column is simply `max` of the members' busiest windows. `busiest[i]`
/// is entry `i`'s largest per-window spike count; a slot then costs
/// `busiest.max(min_beats)` beats (`min_beats` = the spike-link
/// delivery floor).
///
/// Pairing is bit-identical to [`pack_tile_with`]: entries bucket by
/// mask in index order, and both passes consume bucket backs —
/// largest-index-first, the same order the sorted-range form pops.
/// Requires `full_mask` to fit `u16` (the streaming array's column
/// count bounds the tile width; the paper's array has 8 columns).
///
/// # Panics
///
/// As [`pack_tile`], plus `tags.len() == busiest.len()`.
pub fn pack_stream_cost(
    scratch: &mut CostScratch,
    tags: &[u16],
    busiest: &[u16],
    full_mask: u16,
    min_beats: u64,
) -> StreamCost {
    assert!(full_mask != 0, "tile must contain at least one window");
    assert_eq!(tags.len(), busiest.len());
    let CostScratch {
        buckets,
        present,
        classes,
        ..
    } = scratch;
    if buckets.len() <= usize::from(full_mask) {
        buckets.resize_with(usize::from(full_mask) + 1, Vec::new);
    }
    let mut beats = 0u64;
    let mut slots = 0u64;
    present.clear();
    for (&t, &b) in tags.iter().zip(busiest) {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
        if t == full_mask {
            beats += u64::from(b).max(min_beats);
            slots += 1;
        } else {
            if buckets[usize::from(t)].is_empty() {
                present.push(u32::from(t));
            }
            buckets[usize::from(t)].push(b);
        }
    }

    // Pass 1: exact complements, pop bucket backs. (Visit order across
    // complement class pairs is immaterial: distinct pairs never share
    // a class, so each pairing is independent.)
    let mut exact_pairs = 0u64;
    for &m in present.iter() {
        let comp = u32::from(full_mask) & !m;
        if m >= comp {
            continue;
        }
        let k = buckets[m as usize].len().min(buckets[comp as usize].len());
        for _ in 0..k {
            let a = buckets[m as usize].pop().expect("sized by k");
            let b = buckets[comp as usize].pop().expect("sized by k");
            beats += u64::from(a.max(b)).max(min_beats);
        }
        exact_pairs += k as u64;
        slots += k as u64;
    }

    // Pass 2: leftovers densest-first through the popcount index.
    classes.clear();
    classes.extend(
        present
            .iter()
            .copied()
            .filter(|&m| !buckets[m as usize].is_empty()),
    );
    classes.sort_unstable_by_key(|&m| (std::cmp::Reverse(m.count_ones()), m));
    // The class order *is* the greedy preference order (densest first,
    // then smallest mask), and a class `j > i` that is skipped — for
    // overlap or exhaustion — never becomes viable again, so each
    // class's partner search is one forward scan with resume. (The cap
    // on partner density is implied: a class denser than `mi`'s
    // complement can't be disjoint from `mi`.)
    let mut near_pairs = 0u64;
    for i in 0..classes.len() {
        let mi = classes[i];
        let mut j = i + 1;
        while !buckets[mi as usize].is_empty() && j < classes.len() {
            let mj = classes[j];
            if mi & mj == 0 {
                while let (Some(&a), Some(&b)) =
                    (buckets[mi as usize].last(), buckets[mj as usize].last())
                {
                    buckets[mi as usize].pop();
                    buckets[mj as usize].pop();
                    beats += u64::from(a.max(b)).max(min_beats);
                    near_pairs += 1;
                    slots += 1;
                }
            }
            j += 1;
        }
    }

    // Leftover singles, then restore the scratch to all-empty.
    for &m in present.iter() {
        for &b in buckets[m as usize].iter() {
            beats += u64::from(b).max(min_beats);
            slots += 1;
        }
        buckets[m as usize].clear();
    }

    StreamCost {
        slots,
        exact_pairs,
        near_pairs,
        beats,
    }
}

/// [`pack_stream_cost`] when every entry's busiest window is at or
/// under the `min_beats` floor (e.g. `TWS = 1`, where a window holds at
/// most one spike): every slot then costs exactly `min_beats`, so the
/// packing collapses to counting — which entries pair depends only on
/// how many entries carry each mask, never on which. Pairing runs on
/// per-mask counts with no per-entry work at all, and
/// `beats = slots * min_beats`.
///
/// Pair counts are identical to [`pack_tile_with`]'s: pass 1 pairs
/// `min(count, count)` across exact-complement classes, and pass 2's
/// one-at-a-time greedy always re-finds the same partner class until it
/// exhausts, so it batches to `min(count, count)` too.
///
/// # Panics
///
/// As [`pack_tile`].
pub fn pack_count_cost(
    scratch: &mut CostScratch,
    tags: &[u16],
    full_mask: u16,
    min_beats: u64,
) -> StreamCost {
    assert!(full_mask != 0, "tile must contain at least one window");
    let CostScratch {
        counts,
        present,
        classes,
        ..
    } = scratch;
    if counts.len() <= usize::from(full_mask) {
        counts.resize(usize::from(full_mask) + 1, 0);
    }
    present.clear();
    for &t in tags {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
        if counts[usize::from(t)] == 0 {
            present.push(u32::from(t));
        }
        counts[usize::from(t)] += 1;
    }
    count_cost_core(classes, counts, present, full_mask, min_beats)
}

/// Pairing core of [`pack_count_cost`], run on a pre-filled count
/// table: `counts[m]` entries carry mask `m` (the full-tile mask
/// included) and `present` lists each mask with a nonzero count exactly
/// once, in any order. The table is consumed — all-zero on return — so
/// a caller-owned scatter arena can be refilled tile after tile without
/// ever re-materializing the entry list.
///
/// # Panics
///
/// Panics if `full_mask == 0`; `counts` must be indexable by every
/// present mask and by `full_mask`.
pub fn count_cost_core(
    classes: &mut Vec<u32>,
    counts: &mut [u32],
    present: &[u32],
    full_mask: u16,
    min_beats: u64,
) -> StreamCost {
    assert!(full_mask != 0, "tile must contain at least one window");
    // Full-tile tags never pair: peel them off as one slot each. (In
    // pass 1 below the full mask's complement is 0, so it is skipped.)
    let mut slots = u64::from(counts[usize::from(full_mask)]);
    counts[usize::from(full_mask)] = 0;

    let mut exact_pairs = 0u64;
    for &m in present.iter() {
        debug_assert!(m != 0, "silent-in-tile entries must be filtered out");
        let comp = u32::from(full_mask) & !m;
        if m >= comp {
            continue;
        }
        let k = counts[m as usize].min(counts[comp as usize]);
        counts[m as usize] -= k;
        counts[comp as usize] -= k;
        exact_pairs += u64::from(k);
        slots += u64::from(k);
    }

    classes.clear();
    classes.extend(present.iter().copied().filter(|&m| counts[m as usize] > 0));
    classes.sort_unstable_by_key(|&m| (std::cmp::Reverse(m.count_ones()), m));
    // One forward scan per class, as in [`pack_stream_cost`], batching
    // each partner to `min(count, count)` pairs (the one-at-a-time
    // greedy re-finds the same partner until one side exhausts).
    let mut near_pairs = 0u64;
    for i in 0..classes.len() {
        let mi = classes[i];
        let mut j = i + 1;
        while counts[mi as usize] > 0 && j < classes.len() {
            let mj = classes[j];
            if mi & mj == 0 {
                let k = counts[mi as usize].min(counts[mj as usize]);
                counts[mi as usize] -= k;
                counts[mj as usize] -= k;
                near_pairs += u64::from(k);
                slots += u64::from(k);
            }
            j += 1;
        }
    }

    // Leftover singles, then restore the table to all-zero.
    for &m in present.iter() {
        slots += u64::from(counts[m as usize]);
        counts[m as usize] = 0;
    }

    StreamCost {
        slots,
        exact_pairs,
        near_pairs,
        beats: slots * min_beats,
    }
}

/// Pairing core of [`pack_stream_cost`], run on pre-filled per-mask
/// buckets: `buckets[m]` holds the busiest-window values of the entries
/// whose tag is `m`, in entry order (the full-tile mask included), and
/// `present` lists each mask with a nonempty bucket exactly once, in
/// any order. The buckets are consumed — all empty on return — so a
/// caller-owned scatter arena can be refilled tile after tile without
/// ever re-materializing the entry list.
///
/// With `uniform = true`, every entry's busiest window is promised to
/// be at or under `min_beats`: the bucket *values* are never read, only
/// their lengths (the per-mask counts), and `beats = slots × min_beats`
/// — the [`pack_count_cost`] collapse on the same storage.
///
/// # Panics
///
/// Panics if `full_mask == 0`; `buckets` must be indexable by every
/// present mask and by `full_mask`.
pub fn stream_cost_buckets(
    classes: &mut Vec<u32>,
    buckets: &mut [Vec<u16>],
    present: &[u32],
    full_mask: u16,
    min_beats: u64,
    uniform: bool,
) -> StreamCost {
    assert!(full_mask != 0, "tile must contain at least one window");
    // Full-tile tags never pair: one slot each. (In pass 1 below the
    // full mask's complement is 0, so it is skipped.)
    let full = &mut buckets[usize::from(full_mask)];
    let mut slots = full.len() as u64;
    let mut beats = if uniform {
        0
    } else {
        full.iter().map(|&b| u64::from(b).max(min_beats)).sum()
    };
    full.clear();

    let mut exact_pairs = 0u64;
    for &m in present.iter() {
        debug_assert!(m != 0, "silent-in-tile entries must be filtered out");
        let comp = u32::from(full_mask) & !m;
        if m >= comp {
            continue;
        }
        let k = buckets[m as usize].len().min(buckets[comp as usize].len());
        if uniform {
            let la = buckets[m as usize].len();
            let lb = buckets[comp as usize].len();
            buckets[m as usize].truncate(la - k);
            buckets[comp as usize].truncate(lb - k);
        } else {
            // Pop bucket backs — largest entry index first, the order
            // [`pack_tile_with`]'s range shrink consumes.
            for _ in 0..k {
                let a = buckets[m as usize].pop().expect("sized by k");
                let b = buckets[comp as usize].pop().expect("sized by k");
                beats += u64::from(a.max(b)).max(min_beats);
            }
        }
        exact_pairs += k as u64;
        slots += k as u64;
    }

    classes.clear();
    classes.extend(
        present
            .iter()
            .copied()
            .filter(|&m| !buckets[m as usize].is_empty()),
    );
    classes.sort_unstable_by_key(|&m| (std::cmp::Reverse(m.count_ones()), m));
    // One forward scan per class, as in [`pack_stream_cost`].
    let mut near_pairs = 0u64;
    for i in 0..classes.len() {
        let mi = classes[i];
        let mut j = i + 1;
        while !buckets[mi as usize].is_empty() && j < classes.len() {
            let mj = classes[j];
            if mi & mj == 0 {
                if uniform {
                    let k = buckets[mi as usize].len().min(buckets[mj as usize].len());
                    let (la, lb) = (buckets[mi as usize].len(), buckets[mj as usize].len());
                    buckets[mi as usize].truncate(la - k);
                    buckets[mj as usize].truncate(lb - k);
                    near_pairs += k as u64;
                    slots += k as u64;
                } else {
                    while let (Some(&a), Some(&b)) =
                        (buckets[mi as usize].last(), buckets[mj as usize].last())
                    {
                        buckets[mi as usize].pop();
                        buckets[mj as usize].pop();
                        beats += u64::from(a.max(b)).max(min_beats);
                        near_pairs += 1;
                        slots += 1;
                    }
                }
            }
            j += 1;
        }
    }

    // Leftover singles, then restore the buckets to all-empty.
    for &m in present.iter() {
        slots += buckets[m as usize].len() as u64;
        if !uniform {
            for &b in buckets[m as usize].iter() {
                beats += u64::from(b).max(min_beats);
            }
        }
        buckets[m as usize].clear();
    }

    if uniform {
        beats = slots * min_beats;
    }
    StreamCost {
        slots,
        exact_pairs,
        near_pairs,
        beats,
    }
}

/// Result of the generalized (group-size > 2) packing ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPackResult {
    /// Streaming groups after packing; each group's tags are pairwise
    /// disjoint and the group has at most the configured size.
    pub groups: Vec<Vec<usize>>,
    /// Number of input entries before packing.
    pub entries_before: usize,
}

impl GroupPackResult {
    /// Streaming slots after packing.
    pub fn entries_after(&self) -> usize {
        self.groups.len()
    }
}

/// Generalized StSAP: packs up to `max_group` mutually-disjoint entries
/// per streaming slot, by greedy first-fit-decreasing on tag density.
///
/// The paper limits groups to two "to simplify the packing process";
/// this generalization quantifies what that simplification costs (see
/// the `ablation_stsap_limit` experiment). With `max_group == 2` the
/// slot count matches [`pack_tile`]'s greedy pairing closely but not
/// necessarily exactly (different greedy order).
///
/// # Panics
///
/// Panics if `max_group == 0`, `full_mask == 0`, or any tag is zero or
/// out of the tile.
pub fn pack_tile_grouped(tags: &[u128], full_mask: u128, max_group: usize) -> GroupPackResult {
    assert!(max_group >= 1, "groups must hold at least one entry");
    assert!(full_mask != 0, "tile must contain at least one window");
    for &t in tags {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
    }
    // First-fit decreasing: densest tags first, each entry goes into the
    // first open group it fits (disjoint, not full, not already dense).
    let mut order: Vec<usize> = (0..tags.len()).collect();
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(tags[i].count_ones()), tags[i], i));
    let mut groups: Vec<(u128, Vec<usize>)> = Vec::new();
    for i in order {
        let t = tags[i];
        let mut placed = false;
        if max_group > 1 && t != full_mask {
            for (mask, members) in groups.iter_mut() {
                if members.len() < max_group && *mask & t == 0 && *mask != full_mask {
                    *mask |= t;
                    members.push(i);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            groups.push((t, vec![i]));
        }
    }
    GroupPackResult {
        groups: groups.into_iter().map(|(_, m)| m).collect(),
        entries_before: tags.len(),
    }
}

/// Input-density improvement of a packing: the mean fraction of
/// (slot × window) cells carrying activity, before vs. after (Fig. 6c).
pub fn density_gain(tags: &[u128], full_mask: u128, result: &PackResult) -> (f64, f64) {
    let width = full_mask.count_ones() as f64;
    let active: u32 = tags.iter().map(|t| t.count_ones()).sum();
    let before = if tags.is_empty() {
        0.0
    } else {
        f64::from(active) / (tags.len() as f64 * width)
    };
    let after = if result.slots.is_empty() {
        0.0
    } else {
        f64::from(active) / (result.slots.len() as f64 * width)
    };
    (before, after)
}

/// The pre-index packer, kept verbatim as the behavioral reference for
/// the bucket-by-popcount rewrite: `pack_tile` must produce identical
/// output (same slots, same order, same pair counts) on every input.
/// Test-only — the shipping path is [`pack_tile`].
#[cfg(test)]
mod reference {
    use super::{PackResult, Slot};
    use std::collections::HashMap;

    /// The original `pack_tile`: identical pass 1, and a pass 2 that
    /// rescans every class linearly for each pair formed (O(n²) per
    /// tile in the worst case — the ROADMAP item the index fixed).
    pub fn pack_tile_linear(tags: &[u128], full_mask: u128) -> PackResult {
        assert!(full_mask != 0, "tile must contain at least one window");
        let mut slots = Vec::with_capacity(tags.len());
        let mut buckets: HashMap<u128, Vec<usize>> = HashMap::new();
        for (i, &t) in tags.iter().enumerate() {
            assert!(t != 0, "silent-in-tile entries must be filtered out");
            assert!(t & !full_mask == 0, "tag has bits outside the tile");
            if t == full_mask {
                slots.push(Slot {
                    first: i,
                    second: None,
                });
            } else {
                buckets.entry(t).or_default().push(i);
            }
        }

        let mut exact_pairs = 0usize;
        let mut masks: Vec<u128> = buckets.keys().copied().collect();
        masks.sort_unstable();
        for &m in &masks {
            let comp = full_mask & !m;
            if m >= comp {
                continue;
            }
            let (mut a, mut b) = match (buckets.remove(&m), buckets.remove(&comp)) {
                (Some(a), Some(b)) => (a, b),
                (Some(a), None) => {
                    buckets.insert(m, a);
                    continue;
                }
                (None, _) => continue,
            };
            while !a.is_empty() && !b.is_empty() {
                let (x, y) = (
                    a.pop().expect("nonempty by loop guard"),
                    b.pop().expect("nonempty by loop guard"),
                );
                slots.push(Slot {
                    first: x.min(y),
                    second: Some(x.max(y)),
                });
                exact_pairs += 1;
            }
            if !a.is_empty() {
                buckets.insert(m, a);
            }
            if !b.is_empty() {
                buckets.insert(comp, b);
            }
        }

        let mut classes: Vec<(u128, Vec<usize>)> = buckets.into_iter().collect();
        classes.sort_unstable_by_key(|(m, _)| (std::cmp::Reverse(m.count_ones()), *m));
        let mut near_pairs = 0usize;
        for i in 0..classes.len() {
            'outer: while !classes[i].1.is_empty() {
                let mi = classes[i].0;
                let mut best: Option<usize> = None;
                for (j, (mj, ids)) in classes.iter().enumerate().skip(i + 1) {
                    if !ids.is_empty() && mi & mj == 0 {
                        best = Some(j);
                        break;
                    }
                }
                match best {
                    Some(j) => {
                        let x = classes[i].1.pop().expect("nonempty by loop guard");
                        let y = classes[j].1.pop().expect("nonempty by selection");
                        slots.push(Slot {
                            first: x.min(y),
                            second: Some(x.max(y)),
                        });
                        near_pairs += 1;
                    }
                    None => break 'outer,
                }
            }
        }
        for (_, ids) in classes {
            for i in ids {
                slots.push(Slot {
                    first: i,
                    second: None,
                });
            }
        }

        PackResult {
            slots,
            entries_before: tags.len(),
            exact_pairs,
            near_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(r: &PackResult) -> Vec<usize> {
        let mut v: Vec<usize> = r
            .slots
            .iter()
            .flat_map(|s| [Some(s.first), s.second].into_iter().flatten())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_complements_pair_up() {
        // full = 0b1111; 0b0101 and 0b1010 are exact complements.
        let tags = vec![0b0101, 0b1010, 0b0011, 0b1100];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 2);
        assert_eq!(r.exact_pairs, 2);
        assert_eq!(r.near_pairs, 0);
        assert_eq!(ids(&r), vec![0, 1, 2, 3]);
        for s in &r.slots {
            let a = tags[s.first];
            let b = tags[s.second.unwrap()];
            assert_eq!(a & b, 0);
            assert_eq!(a | b, 0b1111);
        }
    }

    #[test]
    fn near_pairs_when_no_exact_complement() {
        // 0b0001 and 0b0110 are disjoint but not complements (bit 3 unused).
        let tags = vec![0b0001, 0b0110];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 1);
        assert_eq!(r.exact_pairs, 0);
        assert_eq!(r.near_pairs, 1);
    }

    #[test]
    fn overlapping_tags_stay_single() {
        let tags = vec![0b0011, 0b0110, 0b1100];
        // 0b0011 & 0b1100 == 0 -> one near pair; 0b0110 overlaps both.
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 2);
        assert_eq!(r.pairs(), 1);
        assert_eq!(ids(&r), vec![0, 1, 2]);
    }

    #[test]
    fn bursting_in_tile_is_never_packed() {
        let tags = vec![0b1111, 0b1111, 0b0101, 0b1010];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 3); // two bursting singles + one pair
        let burst_slots = r
            .slots
            .iter()
            .filter(|s| tags[s.first] == 0b1111)
            .collect::<Vec<_>>();
        assert!(burst_slots.iter().all(|s| s.second.is_none()));
    }

    #[test]
    fn greedy_prefers_densest_partner() {
        // Entry 0 (0b0001) could pair with 0b0110 (2 bits) or 0b0010 (1 bit).
        // The paper's greedy picks the nearest complement = densest fit.
        let tags = vec![0b0001, 0b0110, 0b0010];
        let r = pack_tile(&tags, 0b0111);
        // Densest tag processed first is 0b0110; it pairs with 0b0001.
        let pair = r.slots.iter().find(|s| s.second.is_some()).unwrap();
        let pair_masks = (tags[pair.first], tags[pair.second.unwrap()]);
        assert!(pair_masks == (0b0001, 0b0110) || pair_masks == (0b0110, 0b0001));
        assert_eq!(r.entries_after(), 2);
    }

    #[test]
    fn every_entry_appears_exactly_once() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (1..=200u128)
            .map(|i| (i * 37) % 255 + 1)
            .map(|m| m & full)
            .map(|m| if m == 0 { 1 } else { m })
            .collect();
        let r = pack_tile(&tags, full);
        assert_eq!(ids(&r), (0..200).collect::<Vec<_>>());
        // All pairs are genuinely disjoint.
        for s in &r.slots {
            if let Some(second) = s.second {
                assert_eq!(tags[s.first] & tags[second], 0);
            }
        }
        assert!(r.entries_after() <= 200);
        assert_eq!(
            r.entries_after() + r.pairs(),
            r.entries_before,
            "each pair saves exactly one slot"
        );
    }

    #[test]
    fn packing_is_deterministic() {
        let full = (1u128 << 6) - 1;
        let tags: Vec<u128> = (1..=60u128)
            .map(|i| ((i * 13) % 63) + 1)
            .map(|m| m.min(full))
            .collect();
        assert_eq!(pack_tile(&tags, full), pack_tile(&tags, full));
    }

    #[test]
    #[should_panic]
    fn zero_tag_panics() {
        pack_tile(&[0], 0b1111);
    }

    #[test]
    #[should_panic]
    fn out_of_tile_bits_panic() {
        pack_tile(&[0b10000], 0b1111);
    }

    /// Pinned from `tests/model_invariants.proptest-regressions`: the
    /// shrunk failure of `pack_tile_partitions_entries` at
    /// `seed = 0, n = 47, width = 2`, re-generated exactly as the
    /// property test builds its tags. Every entry must appear exactly
    /// once, pairs must be disjoint and non-bursting, and slot
    /// accounting must balance.
    #[test]
    fn regression_seed0_n47_width2() {
        let (seed, n, width) = (0u64, 47usize, 2u32);
        let full: u128 = (1u128 << width) - 1;
        let tags: Vec<u128> = (0..n)
            .map(|i| {
                let v = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) as u128;
                let m = v & full;
                if m == 0 {
                    1
                } else {
                    m
                }
            })
            .collect();
        let r = pack_tile(&tags, full);
        let mut seen = vec![false; n];
        for s in &r.slots {
            assert!(
                !std::mem::replace(&mut seen[s.first], true),
                "dup {}",
                s.first
            );
            if let Some(sec) = s.second {
                assert!(!std::mem::replace(&mut seen[sec], true), "dup {sec}");
                assert_eq!(tags[s.first] & tags[sec], 0, "pair overlaps");
                assert!(
                    tags[s.first] != full && tags[sec] != full,
                    "bursting packed"
                );
            }
        }
        assert!(seen.into_iter().all(|s| s), "entry lost");
        assert_eq!(r.entries_after() + r.pairs(), r.entries_before);
    }

    #[test]
    fn density_gain_reports_improvement() {
        let tags = vec![0b0101, 0b1010, 0b0011, 0b1100];
        let r = pack_tile(&tags, 0b1111);
        let (before, after) = density_gain(&tags, 0b1111, &r);
        assert!((before - 0.5).abs() < 1e-12);
        assert!((after - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_packing_respects_limit_and_disjointness() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..100u128)
            .map(|i| ((i * 37) % 255) + 1)
            .map(|m| m & full)
            .map(|m| if m == 0 { 1 } else { m })
            .collect();
        for k in [1usize, 2, 3, 4, 8] {
            let r = pack_tile_grouped(&tags, full, k);
            let mut seen = vec![false; tags.len()];
            for g in &r.groups {
                assert!(
                    !g.is_empty() && g.len() <= k,
                    "group size {} > {k}",
                    g.len()
                );
                let mut acc = 0u128;
                for &i in g {
                    assert!(!std::mem::replace(&mut seen[i], true));
                    assert_eq!(acc & tags[i], 0, "group members must be disjoint");
                    acc |= tags[i];
                }
            }
            assert!(
                seen.into_iter().all(|s| s),
                "every entry packed exactly once"
            );
        }
    }

    #[test]
    fn larger_groups_never_need_more_slots() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..200u128).map(|i| ((i * 53) % 254) + 1).collect();
        let mut prev = usize::MAX;
        for k in [1usize, 2, 4, 8] {
            let slots = pack_tile_grouped(&tags, full, k).entries_after();
            assert!(slots <= prev, "k={k}: {slots} > {prev}");
            prev = slots;
        }
        // k = 1 is the unpacked case.
        assert_eq!(
            pack_tile_grouped(&tags, full, 1).entries_after(),
            tags.len()
        );
    }

    #[test]
    fn grouped_pairs_match_pairwise_packer_closely() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..150u128).map(|i| ((i * 91) % 254) + 1).collect();
        let pairwise = pack_tile(&tags, full).entries_after();
        let grouped = pack_tile_grouped(&tags, full, 2).entries_after();
        let diff = pairwise.abs_diff(grouped);
        assert!(
            diff * 10 <= tags.len(),
            "greedy variants differ too much: {pairwise} vs {grouped}"
        );
    }

    #[test]
    fn wide_tile_masks_supported() {
        // 100-window tile (u128 path).
        let full = (1u128 << 100) - 1;
        let a = (1u128 << 50) - 1; // low half
        let b = full & !a; // high half
        let r = pack_tile(&[a, b], full);
        assert_eq!(r.entries_after(), 1);
        assert_eq!(r.exact_pairs, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bucket-by-popcount candidate index is a pure search
        /// acceleration: for arbitrary tag populations and tile widths,
        /// the packing output (slot list *in order*, pair counts) is
        /// identical to the original linear-rescan packer, so every
        /// policy's reports are unchanged (the simulator consumes the
        /// slot list verbatim).
        #[test]
        fn indexed_packer_matches_linear_reference(
            seed in proptest::any::<u64>(),
            n in 0usize..400,
            width in 1u32..=24,
        ) {
            let full: u128 = (1u128 << width) - 1;
            let mut state = seed;
            let tags: Vec<u128> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    let m = u128::from(state) & full;
                    if m == 0 { 1 } else { m }
                })
                .collect();
            prop_assert_eq!(
                pack_tile(&tags, full),
                reference::pack_tile_linear(&tags, full)
            );
        }

        /// The fused bucket coster is the packer: identical pair
        /// counts, slot count, and total stream beats to materializing
        /// [`pack_tile`]'s slots and costing each one from the members'
        /// busiest windows (pairs are disjoint, so a pair's busiest
        /// column is the max of the members' busiest windows).
        #[test]
        fn stream_cost_matches_materialized_slots(
            seed in proptest::any::<u64>(),
            n in 0usize..300,
            width in 1u32..=16,
            min_beats in 1u64..=4,
        ) {
            let full: u16 = ((1u32 << width) - 1) as u16;
            let mut state = seed ^ 0xBADC_0FFE;
            let mut tags16 = Vec::with_capacity(n);
            let mut busiest = Vec::with_capacity(n);
            for _ in 0..n {
                state = state
                    .wrapping_mul(0x5851_F42D_4C95_7F2D)
                    .wrapping_add(0x1405_7B7E_F767_814F);
                let m = (state as u16) & full;
                tags16.push(if m == 0 { 1 } else { m });
                busiest.push(((state >> 32) % 7 + 1) as u16);
            }
            let tags: Vec<u128> = tags16.iter().map(|&t| u128::from(t)).collect();
            let packed = pack_tile(&tags, u128::from(full));
            let want_beats: u64 = packed
                .slots
                .iter()
                .map(|s| {
                    let b = match s.second {
                        Some(j) => busiest[s.first].max(busiest[j]),
                        None => busiest[s.first],
                    };
                    u64::from(b).max(min_beats)
                })
                .sum();
            let mut scratch = CostScratch::default();
            let got = pack_stream_cost(&mut scratch, &tags16, &busiest, full, min_beats);
            prop_assert_eq!(got.slots, packed.entries_after() as u64);
            prop_assert_eq!(got.exact_pairs, packed.exact_pairs as u64);
            prop_assert_eq!(got.near_pairs, packed.near_pairs as u64);
            prop_assert_eq!(got.beats, want_beats);
            // The scratch restores to all-empty: a second call on the
            // same scratch must agree with a fresh one.
            let again = pack_stream_cost(&mut scratch, &tags16, &busiest, full, min_beats);
            prop_assert_eq!(again, got);
        }

        /// The count-only coster matches the materialized packer when
        /// slot costs are uniform (busiest ≤ min_beats everywhere):
        /// identical pair counts, slots, and beats.
        #[test]
        fn count_cost_matches_materialized_slots(
            seed in proptest::any::<u64>(),
            n in 0usize..300,
            width in 1u32..=16,
            min_beats in 1u64..=4,
        ) {
            let full: u16 = ((1u32 << width) - 1) as u16;
            let mut state = seed ^ 0x0DD_B1A5;
            let tags16: Vec<u16> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    let m = (state as u16) & full;
                    if m == 0 { 1 } else { m }
                })
                .collect();
            let tags: Vec<u128> = tags16.iter().map(|&t| u128::from(t)).collect();
            let packed = pack_tile(&tags, u128::from(full));
            let mut scratch = CostScratch::default();
            let got = pack_count_cost(&mut scratch, &tags16, full, min_beats);
            prop_assert_eq!(got.slots, packed.entries_after() as u64);
            prop_assert_eq!(got.exact_pairs, packed.exact_pairs as u64);
            prop_assert_eq!(got.near_pairs, packed.near_pairs as u64);
            prop_assert_eq!(got.beats, packed.entries_after() as u64 * min_beats);
            let again = pack_count_cost(&mut scratch, &tags16, full, min_beats);
            prop_assert_eq!(again, got);
        }

        /// The bucket-arena core is [`pack_stream_cost`] minus the
        /// entry pass: filling the buckets externally (in entry order)
        /// and costing them yields identical results in both modes —
        /// valued (against the entry coster) and uniform (against the
        /// count coster, when every busiest window is at or under
        /// `min_beats`).
        #[test]
        fn bucket_core_matches_entry_costers(
            seed in proptest::any::<u64>(),
            n in 0usize..300,
            width in 1u32..=16,
            min_beats in 1u64..=4,
        ) {
            let full: u16 = ((1u32 << width) - 1) as u16;
            let mut state = seed ^ 0x0B0C_4E75;
            let mut tags16 = Vec::with_capacity(n);
            let mut busiest = Vec::with_capacity(n);
            for _ in 0..n {
                state = state
                    .wrapping_mul(0x5851_F42D_4C95_7F2D)
                    .wrapping_add(0x1405_7B7E_F767_814F);
                let m = (state as u16) & full;
                tags16.push(if m == 0 { 1 } else { m });
                busiest.push(((state >> 32) % 7 + 1) as u16);
            }
            let fill = |values: &[u16]| {
                let mut buckets = vec![Vec::new(); usize::from(full) + 1];
                let mut present = Vec::new();
                for (&t, &b) in tags16.iter().zip(values) {
                    if buckets[usize::from(t)].is_empty() {
                        present.push(u32::from(t));
                    }
                    buckets[usize::from(t)].push(b);
                }
                (buckets, present)
            };
            let mut classes = Vec::new();
            let mut scratch = CostScratch::default();

            // Valued mode ≡ the fused entry coster.
            let (mut buckets, present) = fill(&busiest);
            let got = stream_cost_buckets(
                &mut classes, &mut buckets, &present, full, min_beats, false,
            );
            let want = pack_stream_cost(&mut scratch, &tags16, &busiest, full, min_beats);
            prop_assert_eq!(got, want);
            prop_assert!(buckets.iter().all(Vec::is_empty));

            // Uniform mode ≡ the count coster (busiest ≤ min_beats
            // everywhere, so values are immaterial).
            let capped: Vec<u16> =
                busiest.iter().map(|&b| b.min(min_beats as u16)).collect();
            let (mut buckets, present) = fill(&capped);
            let got = stream_cost_buckets(
                &mut classes, &mut buckets, &present, full, min_beats, true,
            );
            let want = pack_count_cost(&mut scratch, &tags16, full, min_beats);
            prop_assert_eq!(got, want);
            prop_assert!(buckets.iter().all(Vec::is_empty));
        }

        /// Same equivalence on wide (u128) tiles, where the popcount
        /// index is sparse.
        #[test]
        fn indexed_packer_matches_linear_reference_wide(
            seed in proptest::any::<u64>(),
            n in 0usize..120,
            width in 65u32..=127,
        ) {
            let full: u128 = (1u128 << width) - 1;
            let mut state = seed ^ 0xDEAD_BEEF;
            let tags: Vec<u128> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    // Two multiplies give 128 bits of material.
                    let hi = u128::from(state);
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    let m = ((hi << 64) | u128::from(state)) & full;
                    if m == 0 { 1 } else { m }
                })
                .collect();
            prop_assert_eq!(
                pack_tile(&tags, full),
                reference::pack_tile_linear(&tags, full)
            );
        }
    }
}

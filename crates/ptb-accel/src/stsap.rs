//! Spatiotemporally-non-overlapping Spiking Activity Packing (StSAP) —
//! the greedy complement-packing algorithm of Section IV-D and Fig. 8.
//!
//! Given the *tile tags* (the TB-tag bits of the windows one array
//! iteration processes) of the neurons about to stream, StSAP pairs
//! neurons whose tags do not overlap: in every column (time window) at
//! most one member of the pair has activity, so the pair shares a single
//! streaming slot and PE idling drops. Per the paper, packing is greedy
//! — exact 1's complements first, then the nearest (densest) disjoint
//! tag — and at most two neurons combine.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One scheduled streaming slot: a single neuron entry or an StSAP pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Index (into the caller's entry list) of the first neuron.
    pub first: usize,
    /// Index of the packed partner, if any.
    pub second: Option<usize>,
}

impl Slot {
    /// Number of neurons in the slot (1 or 2).
    pub fn len(&self) -> usize {
        1 + usize::from(self.second.is_some())
    }

    /// A slot is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of packing one column tile's entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackResult {
    /// Streaming slots after packing (order deterministic).
    pub slots: Vec<Slot>,
    /// Number of input entries before packing.
    pub entries_before: usize,
    /// Number of exact-complement pairs found.
    pub exact_pairs: usize,
    /// Number of merely-disjoint (nearest-complement) pairs found.
    pub near_pairs: usize,
}

impl PackResult {
    /// Streaming slots after packing.
    pub fn entries_after(&self) -> usize {
        self.slots.len()
    }

    /// Total pairs formed.
    pub fn pairs(&self) -> usize {
        self.exact_pairs + self.near_pairs
    }
}

/// Packs one column tile.
///
/// `tags[i]` is entry `i`'s tile tag: bit `w` set iff the neuron is
/// active in the tile's `w`-th window. `full_mask` has one bit per
/// window of the tile. Entries whose tag equals `full_mask` behave as
/// bursting for this tile and stay unpacked; zero tags are not
/// schedulable and must be filtered by the caller.
///
/// # Panics
///
/// Panics if `full_mask` is zero, or any tag is zero or has bits outside
/// `full_mask`.
pub fn pack_tile(tags: &[u128], full_mask: u128) -> PackResult {
    assert!(full_mask != 0, "tile must contain at least one window");
    let mut slots = Vec::with_capacity(tags.len());
    // Bucket packable (non-bursting-in-tile) entries by tag value.
    let mut buckets: HashMap<u128, Vec<usize>> = HashMap::new();
    for (i, &t) in tags.iter().enumerate() {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
        if t == full_mask {
            slots.push(Slot {
                first: i,
                second: None,
            });
        } else {
            buckets.entry(t).or_default().push(i);
        }
    }

    let mut exact_pairs = 0usize;
    // Pass 1: exact 1's complements. Deterministic order: sort masks.
    let mut masks: Vec<u128> = buckets.keys().copied().collect();
    masks.sort_unstable();
    for &m in &masks {
        let comp = full_mask & !m;
        if m >= comp {
            continue; // handle each unordered pair once
        }
        // Split borrows: take both vectors out, pair, put leftovers back.
        let (mut a, mut b) = match (buckets.remove(&m), buckets.remove(&comp)) {
            (Some(a), Some(b)) => (a, b),
            (Some(a), None) => {
                buckets.insert(m, a);
                continue;
            }
            (None, _) => continue,
        };
        while !a.is_empty() && !b.is_empty() {
            let (x, y) = (
                a.pop().expect("nonempty by loop guard"),
                b.pop().expect("nonempty by loop guard"),
            );
            slots.push(Slot {
                first: x.min(y),
                second: Some(x.max(y)),
            });
            exact_pairs += 1;
        }
        if !a.is_empty() {
            buckets.insert(m, a);
        }
        if !b.is_empty() {
            buckets.insert(comp, b);
        }
    }

    // Pass 2: nearest non-overlapping tags among the leftovers, greedily
    // from the densest tag down (Fig. 8c). Operates on distinct-mask
    // classes, and partner search runs over a bucket-by-popcount
    // candidate index instead of a linear rescan of every class: a
    // partner disjoint with a `p`-bit mask has at most `width - p` bits,
    // so whole popcount buckets are skipped without inspection, and
    // exhausted classes are dropped from their bucket the next time it
    // is scanned. The pairing order is identical to the naive
    // popcount-sorted linear scan (`reference::pack_tile_linear`
    // pins this property-test-exactly); only the search cost changes.
    let mut classes: Vec<(u128, Vec<usize>)> = buckets.into_iter().collect();
    classes.sort_unstable_by_key(|(m, _)| (std::cmp::Reverse(m.count_ones()), *m));
    let width = full_mask.count_ones() as usize;
    // index[p] = classes whose mask has p bits, in ascending class
    // order (the global sort makes each bucket's list ascending).
    let mut index: Vec<Vec<usize>> = vec![Vec::new(); width + 1];
    for (c, (m, _)) in classes.iter().enumerate() {
        index[m.count_ones() as usize].push(c);
    }
    let mut near_pairs = 0usize;
    for i in 0..classes.len() {
        let mi = classes[i].0;
        // A disjoint partner fits in the free bits; it also has no more
        // bits than `mi` (denser classes were handled as earlier `i`s).
        let partner_pc_cap = (mi.count_ones() as usize).min(width - mi.count_ones() as usize);
        while !classes[i].1.is_empty() {
            // Densest-first traversal: popcount buckets descending,
            // ascending class order within a bucket — the exact visit
            // order of the linear scan over the sorted classes.
            let mut best: Option<usize> = None;
            'search: for pc in (1..=partner_pc_cap).rev() {
                let bucket = &mut index[pc];
                bucket.retain(|&c| !classes[c].1.is_empty());
                for &c in bucket.iter() {
                    if c > i && mi & classes[c].0 == 0 {
                        best = Some(c);
                        break 'search;
                    }
                }
            }
            match best {
                Some(j) => {
                    let x = classes[i].1.pop().expect("nonempty by loop guard");
                    let y = classes[j].1.pop().expect("nonempty by selection");
                    slots.push(Slot {
                        first: x.min(y),
                        second: Some(x.max(y)),
                    });
                    near_pairs += 1;
                }
                None => break,
            }
        }
    }
    // Whatever remains streams unpacked.
    for (_, ids) in classes {
        for i in ids {
            slots.push(Slot {
                first: i,
                second: None,
            });
        }
    }

    PackResult {
        slots,
        entries_before: tags.len(),
        exact_pairs,
        near_pairs,
    }
}

/// Result of the generalized (group-size > 2) packing ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPackResult {
    /// Streaming groups after packing; each group's tags are pairwise
    /// disjoint and the group has at most the configured size.
    pub groups: Vec<Vec<usize>>,
    /// Number of input entries before packing.
    pub entries_before: usize,
}

impl GroupPackResult {
    /// Streaming slots after packing.
    pub fn entries_after(&self) -> usize {
        self.groups.len()
    }
}

/// Generalized StSAP: packs up to `max_group` mutually-disjoint entries
/// per streaming slot, by greedy first-fit-decreasing on tag density.
///
/// The paper limits groups to two "to simplify the packing process";
/// this generalization quantifies what that simplification costs (see
/// the `ablation_stsap_limit` experiment). With `max_group == 2` the
/// slot count matches [`pack_tile`]'s greedy pairing closely but not
/// necessarily exactly (different greedy order).
///
/// # Panics
///
/// Panics if `max_group == 0`, `full_mask == 0`, or any tag is zero or
/// out of the tile.
pub fn pack_tile_grouped(tags: &[u128], full_mask: u128, max_group: usize) -> GroupPackResult {
    assert!(max_group >= 1, "groups must hold at least one entry");
    assert!(full_mask != 0, "tile must contain at least one window");
    for &t in tags {
        assert!(t != 0, "silent-in-tile entries must be filtered out");
        assert!(t & !full_mask == 0, "tag has bits outside the tile");
    }
    // First-fit decreasing: densest tags first, each entry goes into the
    // first open group it fits (disjoint, not full, not already dense).
    let mut order: Vec<usize> = (0..tags.len()).collect();
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(tags[i].count_ones()), tags[i], i));
    let mut groups: Vec<(u128, Vec<usize>)> = Vec::new();
    for i in order {
        let t = tags[i];
        let mut placed = false;
        if max_group > 1 && t != full_mask {
            for (mask, members) in groups.iter_mut() {
                if members.len() < max_group && *mask & t == 0 && *mask != full_mask {
                    *mask |= t;
                    members.push(i);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            groups.push((t, vec![i]));
        }
    }
    GroupPackResult {
        groups: groups.into_iter().map(|(_, m)| m).collect(),
        entries_before: tags.len(),
    }
}

/// Input-density improvement of a packing: the mean fraction of
/// (slot × window) cells carrying activity, before vs. after (Fig. 6c).
pub fn density_gain(tags: &[u128], full_mask: u128, result: &PackResult) -> (f64, f64) {
    let width = full_mask.count_ones() as f64;
    let active: u32 = tags.iter().map(|t| t.count_ones()).sum();
    let before = if tags.is_empty() {
        0.0
    } else {
        f64::from(active) / (tags.len() as f64 * width)
    };
    let after = if result.slots.is_empty() {
        0.0
    } else {
        f64::from(active) / (result.slots.len() as f64 * width)
    };
    (before, after)
}

/// The pre-index packer, kept verbatim as the behavioral reference for
/// the bucket-by-popcount rewrite: `pack_tile` must produce identical
/// output (same slots, same order, same pair counts) on every input.
/// Test-only — the shipping path is [`pack_tile`].
#[cfg(test)]
mod reference {
    use super::{PackResult, Slot};
    use std::collections::HashMap;

    /// The original `pack_tile`: identical pass 1, and a pass 2 that
    /// rescans every class linearly for each pair formed (O(n²) per
    /// tile in the worst case — the ROADMAP item the index fixed).
    pub fn pack_tile_linear(tags: &[u128], full_mask: u128) -> PackResult {
        assert!(full_mask != 0, "tile must contain at least one window");
        let mut slots = Vec::with_capacity(tags.len());
        let mut buckets: HashMap<u128, Vec<usize>> = HashMap::new();
        for (i, &t) in tags.iter().enumerate() {
            assert!(t != 0, "silent-in-tile entries must be filtered out");
            assert!(t & !full_mask == 0, "tag has bits outside the tile");
            if t == full_mask {
                slots.push(Slot {
                    first: i,
                    second: None,
                });
            } else {
                buckets.entry(t).or_default().push(i);
            }
        }

        let mut exact_pairs = 0usize;
        let mut masks: Vec<u128> = buckets.keys().copied().collect();
        masks.sort_unstable();
        for &m in &masks {
            let comp = full_mask & !m;
            if m >= comp {
                continue;
            }
            let (mut a, mut b) = match (buckets.remove(&m), buckets.remove(&comp)) {
                (Some(a), Some(b)) => (a, b),
                (Some(a), None) => {
                    buckets.insert(m, a);
                    continue;
                }
                (None, _) => continue,
            };
            while !a.is_empty() && !b.is_empty() {
                let (x, y) = (
                    a.pop().expect("nonempty by loop guard"),
                    b.pop().expect("nonempty by loop guard"),
                );
                slots.push(Slot {
                    first: x.min(y),
                    second: Some(x.max(y)),
                });
                exact_pairs += 1;
            }
            if !a.is_empty() {
                buckets.insert(m, a);
            }
            if !b.is_empty() {
                buckets.insert(comp, b);
            }
        }

        let mut classes: Vec<(u128, Vec<usize>)> = buckets.into_iter().collect();
        classes.sort_unstable_by_key(|(m, _)| (std::cmp::Reverse(m.count_ones()), *m));
        let mut near_pairs = 0usize;
        for i in 0..classes.len() {
            'outer: while !classes[i].1.is_empty() {
                let mi = classes[i].0;
                let mut best: Option<usize> = None;
                for (j, (mj, ids)) in classes.iter().enumerate().skip(i + 1) {
                    if !ids.is_empty() && mi & mj == 0 {
                        best = Some(j);
                        break;
                    }
                }
                match best {
                    Some(j) => {
                        let x = classes[i].1.pop().expect("nonempty by loop guard");
                        let y = classes[j].1.pop().expect("nonempty by selection");
                        slots.push(Slot {
                            first: x.min(y),
                            second: Some(x.max(y)),
                        });
                        near_pairs += 1;
                    }
                    None => break 'outer,
                }
            }
        }
        for (_, ids) in classes {
            for i in ids {
                slots.push(Slot {
                    first: i,
                    second: None,
                });
            }
        }

        PackResult {
            slots,
            entries_before: tags.len(),
            exact_pairs,
            near_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(r: &PackResult) -> Vec<usize> {
        let mut v: Vec<usize> = r
            .slots
            .iter()
            .flat_map(|s| [Some(s.first), s.second].into_iter().flatten())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_complements_pair_up() {
        // full = 0b1111; 0b0101 and 0b1010 are exact complements.
        let tags = vec![0b0101, 0b1010, 0b0011, 0b1100];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 2);
        assert_eq!(r.exact_pairs, 2);
        assert_eq!(r.near_pairs, 0);
        assert_eq!(ids(&r), vec![0, 1, 2, 3]);
        for s in &r.slots {
            let a = tags[s.first];
            let b = tags[s.second.unwrap()];
            assert_eq!(a & b, 0);
            assert_eq!(a | b, 0b1111);
        }
    }

    #[test]
    fn near_pairs_when_no_exact_complement() {
        // 0b0001 and 0b0110 are disjoint but not complements (bit 3 unused).
        let tags = vec![0b0001, 0b0110];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 1);
        assert_eq!(r.exact_pairs, 0);
        assert_eq!(r.near_pairs, 1);
    }

    #[test]
    fn overlapping_tags_stay_single() {
        let tags = vec![0b0011, 0b0110, 0b1100];
        // 0b0011 & 0b1100 == 0 -> one near pair; 0b0110 overlaps both.
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 2);
        assert_eq!(r.pairs(), 1);
        assert_eq!(ids(&r), vec![0, 1, 2]);
    }

    #[test]
    fn bursting_in_tile_is_never_packed() {
        let tags = vec![0b1111, 0b1111, 0b0101, 0b1010];
        let r = pack_tile(&tags, 0b1111);
        assert_eq!(r.entries_after(), 3); // two bursting singles + one pair
        let burst_slots = r
            .slots
            .iter()
            .filter(|s| tags[s.first] == 0b1111)
            .collect::<Vec<_>>();
        assert!(burst_slots.iter().all(|s| s.second.is_none()));
    }

    #[test]
    fn greedy_prefers_densest_partner() {
        // Entry 0 (0b0001) could pair with 0b0110 (2 bits) or 0b0010 (1 bit).
        // The paper's greedy picks the nearest complement = densest fit.
        let tags = vec![0b0001, 0b0110, 0b0010];
        let r = pack_tile(&tags, 0b0111);
        // Densest tag processed first is 0b0110; it pairs with 0b0001.
        let pair = r.slots.iter().find(|s| s.second.is_some()).unwrap();
        let pair_masks = (tags[pair.first], tags[pair.second.unwrap()]);
        assert!(pair_masks == (0b0001, 0b0110) || pair_masks == (0b0110, 0b0001));
        assert_eq!(r.entries_after(), 2);
    }

    #[test]
    fn every_entry_appears_exactly_once() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (1..=200u128)
            .map(|i| (i * 37) % 255 + 1)
            .map(|m| m & full)
            .map(|m| if m == 0 { 1 } else { m })
            .collect();
        let r = pack_tile(&tags, full);
        assert_eq!(ids(&r), (0..200).collect::<Vec<_>>());
        // All pairs are genuinely disjoint.
        for s in &r.slots {
            if let Some(second) = s.second {
                assert_eq!(tags[s.first] & tags[second], 0);
            }
        }
        assert!(r.entries_after() <= 200);
        assert_eq!(
            r.entries_after() + r.pairs(),
            r.entries_before,
            "each pair saves exactly one slot"
        );
    }

    #[test]
    fn packing_is_deterministic() {
        let full = (1u128 << 6) - 1;
        let tags: Vec<u128> = (1..=60u128)
            .map(|i| ((i * 13) % 63) + 1)
            .map(|m| m.min(full))
            .collect();
        assert_eq!(pack_tile(&tags, full), pack_tile(&tags, full));
    }

    #[test]
    #[should_panic]
    fn zero_tag_panics() {
        pack_tile(&[0], 0b1111);
    }

    #[test]
    #[should_panic]
    fn out_of_tile_bits_panic() {
        pack_tile(&[0b10000], 0b1111);
    }

    /// Pinned from `tests/model_invariants.proptest-regressions`: the
    /// shrunk failure of `pack_tile_partitions_entries` at
    /// `seed = 0, n = 47, width = 2`, re-generated exactly as the
    /// property test builds its tags. Every entry must appear exactly
    /// once, pairs must be disjoint and non-bursting, and slot
    /// accounting must balance.
    #[test]
    fn regression_seed0_n47_width2() {
        let (seed, n, width) = (0u64, 47usize, 2u32);
        let full: u128 = (1u128 << width) - 1;
        let tags: Vec<u128> = (0..n)
            .map(|i| {
                let v = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) as u128;
                let m = v & full;
                if m == 0 {
                    1
                } else {
                    m
                }
            })
            .collect();
        let r = pack_tile(&tags, full);
        let mut seen = vec![false; n];
        for s in &r.slots {
            assert!(
                !std::mem::replace(&mut seen[s.first], true),
                "dup {}",
                s.first
            );
            if let Some(sec) = s.second {
                assert!(!std::mem::replace(&mut seen[sec], true), "dup {sec}");
                assert_eq!(tags[s.first] & tags[sec], 0, "pair overlaps");
                assert!(
                    tags[s.first] != full && tags[sec] != full,
                    "bursting packed"
                );
            }
        }
        assert!(seen.into_iter().all(|s| s), "entry lost");
        assert_eq!(r.entries_after() + r.pairs(), r.entries_before);
    }

    #[test]
    fn density_gain_reports_improvement() {
        let tags = vec![0b0101, 0b1010, 0b0011, 0b1100];
        let r = pack_tile(&tags, 0b1111);
        let (before, after) = density_gain(&tags, 0b1111, &r);
        assert!((before - 0.5).abs() < 1e-12);
        assert!((after - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_packing_respects_limit_and_disjointness() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..100u128)
            .map(|i| ((i * 37) % 255) + 1)
            .map(|m| m & full)
            .map(|m| if m == 0 { 1 } else { m })
            .collect();
        for k in [1usize, 2, 3, 4, 8] {
            let r = pack_tile_grouped(&tags, full, k);
            let mut seen = vec![false; tags.len()];
            for g in &r.groups {
                assert!(
                    !g.is_empty() && g.len() <= k,
                    "group size {} > {k}",
                    g.len()
                );
                let mut acc = 0u128;
                for &i in g {
                    assert!(!std::mem::replace(&mut seen[i], true));
                    assert_eq!(acc & tags[i], 0, "group members must be disjoint");
                    acc |= tags[i];
                }
            }
            assert!(
                seen.into_iter().all(|s| s),
                "every entry packed exactly once"
            );
        }
    }

    #[test]
    fn larger_groups_never_need_more_slots() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..200u128).map(|i| ((i * 53) % 254) + 1).collect();
        let mut prev = usize::MAX;
        for k in [1usize, 2, 4, 8] {
            let slots = pack_tile_grouped(&tags, full, k).entries_after();
            assert!(slots <= prev, "k={k}: {slots} > {prev}");
            prev = slots;
        }
        // k = 1 is the unpacked case.
        assert_eq!(
            pack_tile_grouped(&tags, full, 1).entries_after(),
            tags.len()
        );
    }

    #[test]
    fn grouped_pairs_match_pairwise_packer_closely() {
        let full = (1u128 << 8) - 1;
        let tags: Vec<u128> = (0..150u128).map(|i| ((i * 91) % 254) + 1).collect();
        let pairwise = pack_tile(&tags, full).entries_after();
        let grouped = pack_tile_grouped(&tags, full, 2).entries_after();
        let diff = pairwise.abs_diff(grouped);
        assert!(
            diff * 10 <= tags.len(),
            "greedy variants differ too much: {pairwise} vs {grouped}"
        );
    }

    #[test]
    fn wide_tile_masks_supported() {
        // 100-window tile (u128 path).
        let full = (1u128 << 100) - 1;
        let a = (1u128 << 50) - 1; // low half
        let b = full & !a; // high half
        let r = pack_tile(&[a, b], full);
        assert_eq!(r.entries_after(), 1);
        assert_eq!(r.exact_pairs, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bucket-by-popcount candidate index is a pure search
        /// acceleration: for arbitrary tag populations and tile widths,
        /// the packing output (slot list *in order*, pair counts) is
        /// identical to the original linear-rescan packer, so every
        /// policy's reports are unchanged (the simulator consumes the
        /// slot list verbatim).
        #[test]
        fn indexed_packer_matches_linear_reference(
            seed in proptest::any::<u64>(),
            n in 0usize..400,
            width in 1u32..=24,
        ) {
            let full: u128 = (1u128 << width) - 1;
            let mut state = seed;
            let tags: Vec<u128> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    let m = u128::from(state) & full;
                    if m == 0 { 1 } else { m }
                })
                .collect();
            prop_assert_eq!(
                pack_tile(&tags, full),
                reference::pack_tile_linear(&tags, full)
            );
        }

        /// Same equivalence on wide (u128) tiles, where the popcount
        /// index is sparse.
        #[test]
        fn indexed_packer_matches_linear_reference_wide(
            seed in proptest::any::<u64>(),
            n in 0usize..120,
            width in 65u32..=127,
        ) {
            let full: u128 = (1u128 << width) - 1;
            let mut state = seed ^ 0xDEAD_BEEF;
            let tags: Vec<u128> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    // Two multiplies give 128 bits of material.
                    let hi = u128::from(state);
                    state = state
                        .wrapping_mul(0x5851_F42D_4C95_7F2D)
                        .wrapping_add(0x1405_7B7E_F767_814F);
                    let m = ((hi << 64) | u128::from(state)) & full;
                    if m == 0 { 1 } else { m }
                })
                .collect();
            prop_assert_eq!(
                pack_tile(&tags, full),
                reference::pack_tile_linear(&tags, full)
            );
        }
    }
}

//! The analytic layer simulator: PTB (± StSAP) and the three baselines.
//!
//! ## Mapping (Fig. 6)
//!
//! For a CONV layer at output position `(x, y)`, the work is the matrix
//! product `P[m][w] = Σ_j W[m][j] · S[j][w]` over the receptive field
//! `j`: array **rows** tile the output channels `m`, array **columns**
//! tile consecutive time windows `w`. FC layers are the `E = 1` special
//! case. The loop nest is `row-tile → position → column-tile`, keeping
//! a row tile's weights resident as long as possible (weights are the
//! multi-bit bottleneck; binary inputs are cheap to refetch).
//!
//! ## Latency
//!
//! One array iteration streams `S` entry slots (one beat each: the
//! neuron's weight column and its packed spike words). Each PE must
//! apply one accumulate per spike bit of its window, so an iteration is
//! bound by the streaming beats *or* the busiest column's spike count:
//! `cycles = max(S, max_w spikes_w) + (rows + cols − 2)`. The paper's
//! baselines stream densely (`S = |RF|`), so PTB wins latency by
//! skipping silent-in-span neurons and (with StSAP) sharing slots.
//! Layer latency is `max(compute cycles, DRAM traffic / bandwidth)`
//! (stall-free double buffering, Section V-B).
//!
//! ## Energy
//!
//! Access counts per level/kind follow the working-set rules documented
//! on each policy function; `systolic_sim::EnergyModel` turns them into
//! joules. See DESIGN.md §4 for the model's assumptions.
//!
//! ## Parallelism and determinism
//!
//! Every policy's position loop only *accumulates* into a `Tally`,
//! and every tally field is an integer sum — so accumulation is
//! associative and commutative, and any partition of the position space
//! merged in any order produces bit-identical totals. The simulator
//! exploits this: [`SimInputs::threads`] fans contiguous position
//! chunks across scoped worker threads and merges the per-chunk tallies
//! in chunk-index order. `threads = 1` *is* the historical serial walk
//! (one chunk, same iteration order); any other count yields an
//! [`assert_eq!`]-identical [`LayerReport`], because the floating-point
//! energy/latency figures are derived only after the integer totals are
//! final. The shared read-only inputs of the scan — receptive fields
//! and spike popcount tables — are hoisted into [`crate::geom`] and
//! computed once per call.
//!
//! ## Bit-parallel kernel
//!
//! The hot paths read the activity in whole 64-time-point blocks: the
//! PTB gather tests a column tile's windows with one funnel-shifted
//! tag mask ([`crate::geom::tag_mask`]) instead of a per-window walk,
//! and the dense/event-driven baselines popcount packed [`SpikeTensor`]
//! words instead of walking a per-(neuron, time-point) byte table. The
//! retired byte-table walk survives verbatim behind
//! [`simulate_layer_reference`] — the serial per-bit reference the
//! equivalence tests (and benchmarks) pin the word kernel against.
//! Every tally field is an integer sum, and the word paths accumulate
//! exactly the same summands (zero-count windows add zero; per-point
//! event totals aggregate to popcounts), so reports stay bit-identical
//! to the reference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use snn_core::shape::ConvShape;
use snn_core::spike::SpikeTensor;
use systolic_sim::{sat_add, sat_mul, AccessCounts, DataKind, MemLevel};

use crate::config::{Policy, SimInputs};
use crate::geom::{spike_bits, tag_mask, window_popcounts, LayerGeometry};
use crate::prepared::PreparedLayer;
use crate::report::LayerReport;
use crate::stsap::{
    count_cost_core, pack_count_cost, pack_stream_cost, pack_tile, pack_tile_with,
    stream_cost_buckets, CostScratch, PackScratch, StreamCost,
};
use crate::window::WindowPartition;

/// Simulates one layer under `policy`, returning the full report.
///
/// `input` holds the layer's pre-synaptic spike activity
/// (`shape.ifmap_neurons()` neurons over the operational period).
///
/// The scan over output positions honors [`SimInputs::threads`]; the
/// report is identical for every thread count (see the module docs).
/// Derived tables (geometry, popcounts) are built fresh on every call;
/// sweeps that re-simulate the same layer should use
/// [`simulate_layer_prepared`] to reuse them.
///
/// # Panics
///
/// Panics if the input tensor does not match the shape, the period is
/// zero, or `inputs` is invalid.
pub fn simulate_layer(
    inputs: &SimInputs,
    policy: Policy,
    shape: ConvShape,
    input: &SpikeTensor,
) -> LayerReport {
    assert_eq!(
        input.neurons(),
        shape.ifmap_neurons(),
        "input tensor must match the layer's ifmap"
    );
    assert!(input.timesteps() > 0, "operational period must be nonzero");
    dispatch(inputs, policy, shape, input, None, Kernel::Words)
}

/// Simulates one layer with the retired *serial per-bit* inner loops —
/// the pre-kernel implementation, kept as the correctness and
/// performance reference for the bit-parallel word kernel.
///
/// The report is bit-identical to [`simulate_layer`] for every policy,
/// TW size, and thread count (the equivalence tests pin this): the word
/// kernel accumulates exactly the same integer summands, just 64 time
/// points at a time. Derived tables are always built fresh here — the
/// reference exists to be slow and obvious, not memoized.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_layer`].
pub fn simulate_layer_reference(
    inputs: &SimInputs,
    policy: Policy,
    shape: ConvShape,
    input: &SpikeTensor,
) -> LayerReport {
    assert_eq!(
        input.neurons(),
        shape.ifmap_neurons(),
        "input tensor must match the layer's ifmap"
    );
    assert!(input.timesteps() > 0, "operational period must be nonzero");
    dispatch(inputs, policy, shape, input, None, Kernel::Scalar)
}

/// Simulates one layer under `policy` reusing `prep`'s memoized derived
/// tables — the incremental re-simulation entry point for TW and policy
/// sweeps.
///
/// The report is **bit-identical** to
/// [`simulate_layer`]`(inputs, policy, prep.shape(), prep.spikes())`
/// for every policy, TW size, and thread count: the memoized tables are
/// pure functions of the prepared shape and activity, so reuse skips
/// recomputation without changing any value (see [`crate::prepared`]).
///
/// # Panics
///
/// Panics if `inputs` is invalid (the prepared state's own invariants
/// are asserted at [`PreparedLayer::new`]).
pub fn simulate_layer_prepared(
    inputs: &SimInputs,
    policy: Policy,
    prep: &PreparedLayer,
) -> LayerReport {
    dispatch(
        inputs,
        policy,
        prep.shape(),
        prep.spikes(),
        Some(prep),
        Kernel::Words,
    )
}

/// Which inner-loop implementation a simulation runs.
///
/// [`Kernel::Words`] is the production bit-parallel kernel (mask /
/// popcount over packed 64-point words); [`Kernel::Scalar`] is the
/// retired per-bit walk kept behind [`simulate_layer_reference`]. Both
/// accumulate identical integer summands, so the choice never changes a
/// report — only how fast it is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Words,
    Scalar,
}

/// Times the word kernel's inner gathers have run in this process (all
/// threads). Monotone, `Relaxed` — a smoke-test observability counter
/// (the CI bench asserts it advances, proving the bit-parallel path is
/// actually exercised), never part of any report.
static WORD_KERNEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-wide word-kernel invocation counter.
pub fn word_kernel_calls() -> u64 {
    WORD_KERNEL_CALLS.load(Ordering::Relaxed)
}

/// Common dispatch: `prep = None` builds derived tables fresh (the
/// historical path), `Some` reuses the prepared memos.
fn dispatch(
    inputs: &SimInputs,
    policy: Policy,
    shape: ConvShape,
    input: &SpikeTensor,
    prep: Option<&PreparedLayer>,
    kernel: Kernel,
) -> LayerReport {
    inputs.assert_valid();
    match policy {
        Policy::Ptb { stsap } => simulate_ptb(inputs, stsap, shape, input, prep, kernel),
        Policy::BaselineTemporal => {
            simulate_dense_temporal(inputs, shape, input, false, prep, kernel)
        }
        Policy::TimeSerial => simulate_dense_temporal(inputs, shape, input, true, prep, kernel),
        Policy::Ann => simulate_ann(inputs, shape, input, prep),
        Policy::EventDriven => simulate_event_driven(inputs, shape, input, prep, kernel),
    }
}

/// The layer's receptive-field geometry: the prepared memo when
/// available, otherwise built fresh.
fn geometry_of(prep: Option<&PreparedLayer>, shape: ConvShape) -> Arc<LayerGeometry> {
    match prep {
        Some(p) => p.geometry(),
        None => Arc::new(LayerGeometry::new(shape)),
    }
}

/// The dense per-(neuron, time-point) bit table — only the scalar
/// reference kernel reads it now, so it is always built fresh.
fn bits_of(input: &SpikeTensor) -> Arc<Vec<u8>> {
    Arc::new(spike_bits(input))
}

/// The per-(neuron, window) popcount table for `part` (memoized per TW
/// size when prepared).
fn popcounts_of(
    prep: Option<&PreparedLayer>,
    input: &SpikeTensor,
    part: &WindowPartition,
) -> Arc<Vec<u16>> {
    match prep {
        Some(p) => p.window_popcounts(part.tw_size()),
        None => Arc::new(window_popcounts(input, part)),
    }
}

/// Bits per address-event in the event-driven baseline's AER-style input
/// representation (neuron address + payload).
const AER_EVENT_BITS: u64 = 16;

/// Checked accumulation into a tally field: `sat!(tally.field += expr)`
/// clamps at `u64::MAX` instead of wrapping and counts every clamp in
/// the tally's trace saturation counter
/// (`systolic_sim::AccessCounts::saturated`), which the audit layer
/// surfaces as a finding. When nothing clamps the result is
/// bit-identical to `+=`, so determinism and the pinned report-equality
/// properties are unaffected.
macro_rules! sat {
    ($t:ident . $($f:ident).+ += $v:expr) => {{
        let v: u64 = $v;
        let cur = $t.$($f).+;
        $t.$($f).+ = sat_add(cur, v, &mut $t.counts.saturated);
    }};
}

/// Shared accumulation state while walking a layer's iteration space.
///
/// Every field is an integer sum over disjoint slices of the iteration
/// space, which makes tallies a commutative monoid under [`Tally::merge`]
/// — the property the parallel position scan relies on for bit-exact
/// determinism.
#[derive(Debug, Default)]
struct Tally {
    counts: AccessCounts,
    compute_cycles: u64,
    useful_ops: u64,
    entries_before: u64,
    entries_after: u64,
    exact_pairs: u64,
    near_pairs: u64,
    /// Σ over (position, column tile) of raw streamed entries — the
    /// weight-fetch driver, independent of the row tile.
    sum_entries_raw: u64,
}

impl Tally {
    /// Folds another tally into `self`. All fields are integer sums, so
    /// any merge order yields the same totals; the scan still merges in
    /// chunk-index order for clarity. Additions are checked: a clamp is
    /// counted in the trace's saturation counter instead of wrapping.
    fn merge(&mut self, other: Tally) {
        self.counts.merge(&other.counts);
        let sat = &mut self.counts.saturated;
        self.compute_cycles = sat_add(self.compute_cycles, other.compute_cycles, sat);
        self.useful_ops = sat_add(self.useful_ops, other.useful_ops, sat);
        self.entries_before = sat_add(self.entries_before, other.entries_before, sat);
        self.entries_after = sat_add(self.entries_after, other.entries_after, sat);
        self.exact_pairs = sat_add(self.exact_pairs, other.exact_pairs, sat);
        self.near_pairs = sat_add(self.near_pairs, other.near_pairs, sat);
        self.sum_entries_raw = sat_add(self.sum_entries_raw, other.sum_entries_raw, sat);
    }
}

/// Fans the index scan `0..items` across up to `threads` scoped workers,
/// each covering one contiguous chunk, and merges the per-chunk tallies
/// in chunk-index order.
///
/// With `threads = 1` (or one item) the single chunk is the exact
/// historical serial walk. Chunks never split below one item, so the
/// worker count is `min(threads, items)`.
fn scan_chunks<F>(threads: usize, items: usize, scan: F) -> Tally
where
    F: Fn(std::ops::Range<usize>) -> Tally + Sync,
{
    let workers = threads.max(1).min(items.max(1));
    if workers <= 1 {
        return scan(0..items);
    }
    let chunk = items.div_ceil(workers);
    let parts: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let scan = &scan;
                s.spawn(move || scan(w * chunk..((w + 1) * chunk).min(items)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation worker must not panic"))
            .collect()
    });
    let mut total = Tally::default();
    for part in parts {
        total.merge(part);
    }
    total
}

/// Streaming cost of one slot, in beats: the busiest column's
/// accumulate count, floored at the spike-link delivery time. For an
/// StSAP pair both members' window popcounts are summed per column —
/// their tags are disjoint so at most one member is nonzero per window,
/// but the sum is computed in `u32` so that large analysis-scale windows
/// (popcounts beyond `u8`) can never overflow the addition, which the
/// old `u8 + u8` did in debug builds.
fn slot_cost(a: &[u16], b: Option<&[u16]>, min_beats: u64) -> u64 {
    let busiest = match b {
        None => a.iter().copied().map(u32::from).max().unwrap_or(0),
        Some(b) => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| u32::from(x) + u32::from(y))
            .max()
            .unwrap_or(0),
    };
    u64::from(busiest).max(min_beats)
}

/// The event-driven time-serial SNN accelerator (\[15, 34, 35\]): at each
/// time point, only firing pre-synaptic neurons are fetched and
/// integrated (AER events of [`AER_EVENT_BITS`] each), but weights are
/// refetched at *every* time point a neuron fires (no reuse through
/// time) and time points are processed strictly serially with the
/// columns used spatially — the lack-of-parallelism critique of
/// Section I.
fn simulate_event_driven(
    inputs: &SimInputs,
    shape: ConvShape,
    input: &SpikeTensor,
    prep: Option<&PreparedLayer>,
    kernel: Kernel,
) -> LayerReport {
    let arch = &inputs.arch;
    let rows = u64::from(arch.array.rows());
    // No spatial or temporal parallelism in this baseline: columns idle.
    let fill = arch.array.fill_cycles();
    let t = input.timesteps();
    let m = u64::from(shape.out_channels());
    let row_tiles = m.div_ceil(rows);
    let pbits = u64::from(arch.potential_bits);
    let wbits = u64::from(arch.weight_bits);

    let geo = geometry_of(prep, shape);
    // Derived once from the geometry the scan iterates — a separate
    // `ofmap_side()²` could silently diverge under a future non-square
    // output map.
    let positions = geo.positions() as u64;
    let bit_at = match kernel {
        Kernel::Scalar => bits_of(input),
        Kernel::Words => Arc::new(Vec::new()),
    };
    let bit_at: &[u8] = &bit_at;
    let wpn = input.words_per_neuron();
    if kernel == Kernel::Words {
        WORD_KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    // Events are integrated per position; with columns used spatially, a
    // position tile of up to `cols` positions shares one pass per time
    // point, streaming the union of their active receptive-field events
    // (adjacent RFs almost coincide, so we approximate the union by the
    // per-position count and divide the shared quantities by `cols`).
    //
    // No spatial parallelism: neurons are processed "one at a time, and
    // from time points to time points" (Section I's critique) — every
    // position pays its own serial pass, and every event's weight column
    // walks the whole hierarchy from off-chip (no windowed reuse; the
    // "iterative weight data access" the paper targets).
    //
    // Every per-time-point tally is linear in the point's event count or
    // constant per *active* point, so the word kernel aggregates: total
    // events by popcounting each receptive-field neuron's packed words,
    // active points by popcounting their OR. Identical integer sums,
    // one pass over `|RF| · T / 64` words instead of `|RF| · T` bytes.
    let mut tally = scan_chunks(inputs.threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        let mut union = vec![0u64; wpn];
        for p in range {
            let rf = geo.rf(p);
            match kernel {
                Kernel::Words => {
                    union.fill(0);
                    let mut events = 0u64;
                    for &n in rf {
                        for (u, &w) in union.iter_mut().zip(input.neuron_words(n)) {
                            *u |= w;
                            events += u64::from(w.count_ones());
                        }
                    }
                    if events == 0 {
                        continue; // a fully silent receptive field
                    }
                    let active_tps: u64 = union.iter().map(|w| u64::from(w.count_ones())).sum();
                    sat!(tally.compute_cycles += (events + fill * active_tps) * row_tiles);
                    sat!(tally.entries_before += events * row_tiles);
                    sat!(tally.useful_ops += events * m);
                    sat!(tally.counts.ac_ops += events * m);
                    // Weights refetched for every event at every time point.
                    let w_bits = events * m * wbits;
                    tally.counts.transfer(
                        MemLevel::Dram,
                        MemLevel::GlobalBuffer,
                        DataKind::Weight,
                        w_bits,
                    );
                    tally.counts.transfer(
                        MemLevel::GlobalBuffer,
                        MemLevel::L1,
                        DataKind::Weight,
                        w_bits,
                    );
                    tally.counts.read(MemLevel::L1, DataKind::Weight, w_bits);
                    let in_bits = events * AER_EVENT_BITS * row_tiles;
                    tally.counts.transfer(
                        MemLevel::GlobalBuffer,
                        MemLevel::L1,
                        DataKind::InputSpike,
                        in_bits,
                    );
                    tally
                        .counts
                        .read(MemLevel::L1, DataKind::InputSpike, in_bits);
                    // Membrane potentials move once per *active* time
                    // point, for every position's own output neurons.
                    tally.counts.read(
                        MemLevel::GlobalBuffer,
                        DataKind::Membrane,
                        m * pbits * active_tps,
                    );
                    tally.counts.write(
                        MemLevel::GlobalBuffer,
                        DataKind::Membrane,
                        m * pbits * active_tps,
                    );
                }
                Kernel::Scalar => {
                    for tp in 0..t {
                        let mut active = 0u64;
                        for &n in rf {
                            active += u64::from(bit_at[n * t + tp]);
                        }
                        if active == 0 {
                            continue; // silent time points are skipped entirely
                        }
                        sat!(tally.compute_cycles += (active + fill) * row_tiles);
                        sat!(tally.entries_before += active * row_tiles);
                        sat!(tally.useful_ops += active * m);
                        sat!(tally.counts.ac_ops += active * m);
                        // Weights refetched for every event at every time point.
                        let w_bits = active * m * wbits;
                        tally.counts.transfer(
                            MemLevel::Dram,
                            MemLevel::GlobalBuffer,
                            DataKind::Weight,
                            w_bits,
                        );
                        tally.counts.transfer(
                            MemLevel::GlobalBuffer,
                            MemLevel::L1,
                            DataKind::Weight,
                            w_bits,
                        );
                        tally.counts.read(MemLevel::L1, DataKind::Weight, w_bits);
                        let in_bits = active * AER_EVENT_BITS * row_tiles;
                        tally.counts.transfer(
                            MemLevel::GlobalBuffer,
                            MemLevel::L1,
                            DataKind::InputSpike,
                            in_bits,
                        );
                        tally
                            .counts
                            .read(MemLevel::L1, DataKind::InputSpike, in_bits);
                        // Membrane potentials move every active time point,
                        // for every position's own output neurons.
                        tally
                            .counts
                            .read(MemLevel::GlobalBuffer, DataKind::Membrane, m * pbits);
                        tally
                            .counts
                            .write(MemLevel::GlobalBuffer, DataKind::Membrane, m * pbits);
                    }
                }
            }
        }
        tally
    });
    tally.entries_after = tally.entries_before;

    sat!(tally.counts.compare_ops += m * positions * t as u64);
    // Input events from DRAM once (event streams are compact).
    let events = input.total_spikes();
    tally.counts.transfer(
        MemLevel::Dram,
        MemLevel::GlobalBuffer,
        DataKind::InputSpike,
        events * AER_EVENT_BITS,
    );
    let out_bits = m * positions * t as u64;
    tally
        .counts
        .write(MemLevel::GlobalBuffer, DataKind::OutputSpike, out_bits);
    tally
        .counts
        .write(MemLevel::Dram, DataKind::OutputSpike, out_bits);
    let ac = tally.counts.ac_ops;
    let psum_bits = sat_mul(ac, pbits, &mut tally.counts.saturated);
    tally
        .counts
        .read(MemLevel::Scratchpad, DataKind::Psum, psum_bits);
    tally
        .counts
        .write(MemLevel::Scratchpad, DataKind::Psum, psum_bits);

    let dram_bytes = tally.counts.dram_traffic_bits() as f64 / 8.0;
    let dram_cycles = (dram_bytes / arch.dram_bytes_per_cycle()).ceil() as u64;
    let cycles = tally.compute_cycles.max(dram_cycles);
    let pe_cycles = sat_mul(
        u64::from(arch.array.pe_count()),
        cycles,
        &mut tally.counts.saturated,
    );
    let energy = inputs.energy.evaluate(&tally.counts);
    LayerReport {
        policy: Policy::EventDriven,
        tw_size: 1,
        energy,
        cycles,
        seconds: arch.cycles_to_seconds(cycles),
        useful_ops: tally.useful_ops,
        pe_cycles,
        entries_before: tally.entries_before,
        entries_after: tally.entries_after,
        exact_pairs: 0,
        near_pairs: 0,
        counts: tally.counts,
    }
}

/// Finalizes a tally into a report: applies weight/input/output movement
/// that is computed at layer granularity, evaluates energy, and applies
/// the bandwidth bound.
#[allow(clippy::too_many_arguments)]
fn finalize(
    inputs: &SimInputs,
    policy: Policy,
    shape: ConvShape,
    input: &SpikeTensor,
    mut tally: Tally,
    weight_resident: bool,
    dense_input: bool,
    tw_size: u32,
) -> LayerReport {
    let arch = &inputs.arch;
    let rows = u64::from(arch.array.rows());
    let m = u64::from(shape.out_channels());
    let row_tiles = m.div_ceil(rows);
    let rf = shape.receptive_field() as u64;
    let wbits = u64::from(arch.weight_bits);
    let pbits = u64::from(arch.potential_bits);
    let t = input.timesteps() as u64;
    let e2 = u64::from(shape.ofmap_side()).pow(2);

    // --- Weight movement, per row tile (loop nest keeps a row tile's
    // weights live across positions and column tiles).
    for rt in 0..row_tiles {
        let rows_rt = rows.min(m - rt * rows);
        // Array-edge streaming: every raw entry delivers one weight per
        // active row. The product folds an accumulated total, so it is
        // checked: a clamp shows up in the saturation counter.
        let edge = sat_mul(
            sat_mul(tally.sum_entries_raw, rows_rt, &mut tally.counts.saturated),
            wbits,
            &mut tally.counts.saturated,
        );
        tally.counts.read(MemLevel::L1, DataKind::Weight, edge);
        let ws = rows_rt * rf * wbits;
        let gb_to_l1 = if weight_resident && ws <= inputs.l1_weight_capacity_bits() {
            ws // fetched once, stays resident for the whole row-tile pass
        } else {
            edge // streamed through L1 per iteration
        };
        tally.counts.transfer(
            MemLevel::GlobalBuffer,
            MemLevel::L1,
            DataKind::Weight,
            gb_to_l1,
        );
        let dram = if ws <= inputs.gb_weight_capacity_bits() {
            ws // global buffer stages the row tile once
        } else {
            gb_to_l1
        };
        tally.counts.transfer(
            MemLevel::Dram,
            MemLevel::GlobalBuffer,
            DataKind::Weight,
            dram,
        );
    }

    // --- Input spikes from DRAM: silent neurons are never fetched under
    // PTB (TB-tag-driven), while the dense baselines fetch everything.
    let fetched_neurons = if dense_input {
        input.neurons() as u64
    } else {
        input.active_neurons() as u64
    };
    let in_bits = fetched_neurons * t;
    let passes = if in_bits <= inputs.gb_input_capacity_bits() {
        1
    } else {
        row_tiles // refetched per row-tile pass
    };
    tally.counts.transfer(
        MemLevel::Dram,
        MemLevel::GlobalBuffer,
        DataKind::InputSpike,
        in_bits * passes,
    );

    // --- Output spikes: written back through the hierarchy once.
    let out_bits = m * e2 * t;
    tally
        .counts
        .write(MemLevel::GlobalBuffer, DataKind::OutputSpike, out_bits);
    tally
        .counts
        .write(MemLevel::Dram, DataKind::OutputSpike, out_bits);

    // --- Partial sums: accumulate in the PE scratchpad (read-modify-
    // write per AC op) and are drained once per (neuron, window) by
    // Step B.
    let ac = tally.counts.ac_ops;
    let psum_bits = sat_mul(ac, pbits, &mut tally.counts.saturated);
    tally
        .counts
        .read(MemLevel::Scratchpad, DataKind::Psum, psum_bits);
    tally
        .counts
        .write(MemLevel::Scratchpad, DataKind::Psum, psum_bits);
    let windows = t.div_ceil(u64::from(tw_size));
    tally.counts.read(
        MemLevel::Scratchpad,
        DataKind::Psum,
        m * e2 * windows * pbits,
    );

    // --- Latency: compute vs. off-chip bandwidth (double buffering
    // hides the smaller; Section V-B's stall-free assumption).
    let dram_bytes = tally.counts.dram_traffic_bits() as f64 / 8.0;
    let dram_cycles = (dram_bytes / arch.dram_bytes_per_cycle()).ceil() as u64;
    let cycles = tally.compute_cycles.max(dram_cycles);
    let pe_cycles = sat_mul(
        u64::from(arch.array.pe_count()),
        cycles,
        &mut tally.counts.saturated,
    );

    let energy = inputs.energy.evaluate(&tally.counts);
    LayerReport {
        policy,
        tw_size,
        energy,
        cycles,
        seconds: arch.cycles_to_seconds(cycles),
        useful_ops: tally.useful_ops,
        pe_cycles,
        entries_before: tally.entries_before,
        entries_after: tally.entries_after,
        exact_pairs: tally.exact_pairs,
        near_pairs: tally.near_pairs,
        counts: tally.counts,
    }
}

/// Shared per-layer constants of the PTB position scan, plus the
/// per-(position, column-tile) tally accounting both kernels emit.
///
/// The word and scalar scans walk (output position × column tile) pairs
/// in different orders (tile-major vs. position-major), which is safe:
/// every tally is a saturating sum of nonnegative terms, and such sums
/// are order-independent — the result is `min(true total, u64::MAX)`
/// regardless of the order the same summands arrive in.
struct PtbCtx<'a> {
    tiles: &'a [(usize, usize)],
    /// Nominal tile width (the array's column count): every tile except
    /// possibly the last spans exactly this many windows, starting at
    /// `ti * tile_width`.
    tile_width: usize,
    n_w: usize,
    tws: u32,
    min_beats: u64,
    m: u64,
    row_tiles: u64,
    fill: u64,
    pbits: u64,
}

impl PtbCtx<'_> {
    /// Books one (position, tile) array iteration into the tally —
    /// identical arithmetic for both kernels.
    fn account(
        &self,
        tally: &mut Tally,
        raw: u64,
        slots: u64,
        stream_beats: u64,
        spikes_span: u64,
        active_windows: u64,
    ) {
        let iter_cycles = stream_beats + self.fill;
        sat!(tally.compute_cycles += iter_cycles * self.row_tiles);
        sat!(tally.useful_ops += spikes_span * self.m);
        sat!(tally.counts.ac_ops += spikes_span * self.m);
        sat!(tally.entries_before += raw * self.row_tiles);
        sat!(tally.entries_after += slots * self.row_tiles);
        sat!(tally.sum_entries_raw += raw);

        // Input spikes staged per row-tile pass at TB granularity:
        // only *tagged* time batches are fetched, TWS bits each —
        // wider windows therefore pay for the zero bits they pack
        // (Section VI-A1's input-movement growth).
        let in_bits = active_windows * u64::from(self.tws) * self.row_tiles;
        tally.counts.transfer(
            MemLevel::GlobalBuffer,
            MemLevel::L1,
            DataKind::InputSpike,
            in_bits,
        );
        tally
            .counts
            .read(MemLevel::L1, DataKind::InputSpike, in_bits);

        // Membrane potentials cross column tiles once per tile.
        tally.counts.read(
            MemLevel::GlobalBuffer,
            DataKind::Membrane,
            self.m * self.pbits,
        );
        tally.counts.write(
            MemLevel::GlobalBuffer,
            DataKind::Membrane,
            self.m * self.pbits,
        );
    }
}

/// Storage word for a hoisted per-(neuron, tile) window-activity mask.
///
/// A column tile spans at most 128 windows, so `u128` always works; the
/// paper's architecture streams 8 columns, so the common case fits a
/// `u16` and the per-tile mask table shrinks 8× — small enough that one
/// tile's slice stays cache-resident across every output position.
trait TileMask: Copy + Default + Send + Sync {
    /// Working memory for [`TileMask::stream_cost`].
    type Scratch: Default;
    fn from_u128(m: u128) -> Self;
    fn to_u128(self) -> u128;
    /// StSAP pack + slot costing for one gathered tile: pair counts,
    /// slot count, and total stream beats, where entry `i` streams
    /// `busiest[i]` beats (floored at `min_beats`) and a pair streams
    /// the max of its members (exact — pairs are tag-disjoint).
    fn stream_cost(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        busiest: &[u16],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost;
    /// [`TileMask::stream_cost`] when every entry's busiest window is
    /// at or under `min_beats` (always true at `TWS = 1`): every slot
    /// costs exactly `min_beats`, so only pair *counts* matter.
    fn stream_cost_uniform(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost;
}

impl TileMask for u16 {
    /// Narrow tiles use the fused bucket coster — no slot list, no
    /// entry sort (see [`pack_stream_cost`]).
    type Scratch = CostScratch;
    fn from_u128(m: u128) -> Self {
        debug_assert!(m <= u128::from(u16::MAX));
        m as u16
    }
    fn to_u128(self) -> u128 {
        u128::from(self)
    }
    fn stream_cost(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        busiest: &[u16],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost {
        pack_stream_cost(scratch, tags, busiest, full_mask as u16, min_beats)
    }
    fn stream_cost_uniform(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost {
        pack_count_cost(scratch, tags, full_mask as u16, min_beats)
    }
}

impl TileMask for u128 {
    /// Wide tiles materialize the slot list and cost it from the
    /// hoisted busiest-window maxima.
    type Scratch = PackScratch;
    fn from_u128(m: u128) -> Self {
        m
    }
    fn to_u128(self) -> u128 {
        self
    }
    fn stream_cost(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        busiest: &[u16],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost {
        let packed = pack_tile_with(scratch, tags, full_mask);
        let mut beats = 0u64;
        for slot in &packed.slots {
            let b = match slot.second {
                Some(j) => busiest[slot.first].max(busiest[j]),
                None => busiest[slot.first],
            };
            beats += u64::from(b).max(min_beats);
        }
        StreamCost {
            slots: packed.entries_after() as u64,
            exact_pairs: packed.exact_pairs as u64,
            near_pairs: packed.near_pairs as u64,
            beats,
        }
    }
    fn stream_cost_uniform(
        scratch: &mut Self::Scratch,
        tags: &[Self],
        full_mask: u128,
        min_beats: u64,
    ) -> StreamCost {
        let packed = pack_tile_with(scratch, tags, full_mask);
        StreamCost {
            slots: packed.entries_after() as u64,
            exact_pairs: packed.exact_pairs as u64,
            near_pairs: packed.near_pairs as u64,
            beats: packed.entries_after() as u64 * min_beats,
        }
    }
}

/// The word kernel's hoisted gather tables, neuron-major: entry
/// `n * n_tiles + ti` describes neuron `n` in column tile `ti`, so one
/// neuron's whole tile row is contiguous (a cache line or two) and the
/// scan's working set is just the current receptive field's rows.
///
/// Everything the position scan re-reads per (neuron, tile) is a pure
/// function of the activity and the partition, never of the output
/// position — so one pass pays each neuron's window walk exactly once
/// instead of once per overlapping receptive field, and the scan's
/// inner loop degenerates to three table lookups.
struct WordRows<M> {
    n_tiles: usize,
    /// Packed per-neuron tile-activity words (`tile_words` per neuron):
    /// bit `ti` set iff the neuron has any spike in column tile `ti`.
    /// The gather walks set bits only, skipping silent tiles wholesale.
    active: Vec<u64>,
    tile_words: usize,
    /// Window-activity mask of the tile (bit `i` ⇔ window `w0 + i` has
    /// spikes) — the [`tag_mask`] funnel-shift result.
    masks: Vec<M>,
    /// Packed per-(neuron, tile) pair: low 16 bits the sum of the
    /// tile's window popcounts (the entry's `spikes_span` contribution
    /// — at most 128 windows × a ≤64-spike window, 8192), high 16 bits
    /// the busiest window (a lone entry's [`slot_cost`]). One load per
    /// gathered entry. Empty at `TWS = 1`, where the span is the mask's
    /// popcount, every busiest window is 1, and the scan never consults
    /// the table.
    span_busy: Vec<u32>,
}

/// Builds [`WordRows`] at `TWS = 1`, straight from the spike tensor's
/// packed time words: a per-point window holds at most one spike, so
/// the tag words *are* the tensor words and a tile's mask is a bit
/// field of the time word. When the tile width divides a storage word
/// (the paper's 8-column array), each nonzero word splits into its
/// tile fields in place — `O(nonzero words + active tiles)`, skipping
/// silent words wholesale; otherwise each tile slices out with two
/// funnel shifts ([`tag_mask`]). The spans and busiest tables stay
/// empty: at `TWS = 1` a span is its mask's popcount and every busiest
/// window is 1, so the scan never consults them.
fn build_word_rows_tw1<M: TileMask>(
    neurons: usize,
    ctx: &PtbCtx,
    tags: &[u64],
    tag_words: usize,
) -> WordRows<M> {
    let tile_width = ctx.tile_width;
    let n_tiles = ctx.tiles.len();
    let tile_words = n_tiles.div_ceil(64);
    let mut rows = WordRows {
        n_tiles,
        active: vec![0u64; neurons * tile_words],
        tile_words,
        masks: vec![M::default(); neurons * n_tiles],
        span_busy: Vec::new(),
    };
    if tile_width <= 64 && 64 % tile_width == 0 {
        // A tile never straddles a storage word: walk nonzero words,
        // split each into its nonzero tile fields.
        debug_assert!(ctx
            .tiles
            .iter()
            .enumerate()
            .all(|(ti, &(w0, _))| w0 == ti * tile_width));
        let tpw = 64 / tile_width;
        let field_mask = if tile_width == 64 {
            u64::MAX
        } else {
            (1u64 << tile_width) - 1
        };
        for n in 0..neurons {
            let row = n * n_tiles;
            for (wi, &word) in tags[n * tag_words..(n + 1) * tag_words].iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let f = (word.trailing_zeros() as usize / tile_width) * tile_width;
                    let sub = (word >> f) & field_mask;
                    word &= !(field_mask << f);
                    let ti = wi * tpw + f / tile_width;
                    rows.masks[row + ti] = M::from_u128(u128::from(sub));
                    rows.active[n * tile_words + ti / 64] |= 1u64 << (ti % 64);
                }
            }
        }
    } else {
        for n in 0..neurons {
            for (ti, &(w0, w1)) in ctx.tiles.iter().enumerate() {
                let mask = tag_mask(tags, tag_words, n, w0, w1);
                if mask != 0 {
                    rows.masks[n * n_tiles + ti] = M::from_u128(mask);
                    rows.active[n * tile_words + ti / 64] |= 1u64 << (ti % 64);
                }
            }
        }
    }
    rows
}

/// Builds [`WordRows`] for window sizes that divide a storage word
/// (`64 % TWS == 0` — every Fig. 10 size), fused over the spike words:
/// each nonzero word is split into its `64 / TWS` windows in place, so
/// the cost is `O(nonzero words + active windows)` and the dense
/// per-(neuron, window) popcount table is never materialized. Window
/// indices grow monotonically within a neuron, so per-tile state
/// (mask/span/busiest) accumulates in registers and flushes once per
/// active tile.
fn build_word_rows_fused<M: TileMask>(input: &SpikeTensor, ctx: &PtbCtx) -> WordRows<M> {
    let tile_width = ctx.tile_width;
    let tws = ctx.tws as usize;
    debug_assert!(tws > 1 && 64 % tws == 0);
    let wpw = 64 / tws;
    let field_mask = if tws == 64 {
        u64::MAX
    } else {
        (1u64 << tws) - 1
    };
    let neurons = input.neurons();
    let n_tiles = ctx.tiles.len();
    let tile_words = n_tiles.div_ceil(64);
    debug_assert!(ctx
        .tiles
        .iter()
        .enumerate()
        .all(|(ti, &(w0, _))| w0 == ti * tile_width));
    let mut rows = WordRows {
        n_tiles,
        active: vec![0u64; neurons * tile_words],
        tile_words,
        masks: vec![M::default(); neurons * n_tiles],
        span_busy: vec![0u32; neurons * n_tiles],
    };
    for n in 0..neurons {
        let row = n * n_tiles;
        let mut cur_ti = usize::MAX;
        let (mut mask, mut span, mut busiest) = (0u128, 0u32, 0u32);
        for (wi, &word) in input.neuron_words(n).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let f = (word.trailing_zeros() as usize / tws) * tws;
                let sub = (word >> f) & field_mask;
                word &= !(field_mask << f);
                let w = wi * wpw + f / tws;
                let ti = w / tile_width;
                if ti != cur_ti {
                    if cur_ti != usize::MAX {
                        let idx = row + cur_ti;
                        rows.masks[idx] = M::from_u128(mask);
                        rows.span_busy[idx] = span | (busiest << 16);
                        rows.active[n * tile_words + cur_ti / 64] |= 1u64 << (cur_ti % 64);
                    }
                    cur_ti = ti;
                    mask = 0;
                    span = 0;
                    busiest = 0;
                }
                let c = sub.count_ones();
                mask |= 1 << (w - ti * tile_width);
                span += c;
                busiest = busiest.max(c);
            }
        }
        if cur_ti != usize::MAX {
            let idx = row + cur_ti;
            rows.masks[idx] = M::from_u128(mask);
            rows.span_busy[idx] = span | (busiest << 16);
            rows.active[n * tile_words + cur_ti / 64] |= 1u64 << (cur_ti % 64);
        }
    }
    rows
}

/// Builds [`WordRows`] from a per-(neuron, window) popcount table — the
/// general fallback for window sizes that straddle storage words. One
/// contiguous row walk per neuron derives mask, span and busiest
/// together.
fn build_word_rows_pops<M: TileMask>(neurons: usize, ctx: &PtbCtx, win_pop: &[u16]) -> WordRows<M> {
    let n_tiles = ctx.tiles.len();
    let tile_words = n_tiles.div_ceil(64);
    let mut rows = WordRows {
        n_tiles,
        active: vec![0u64; neurons * tile_words],
        tile_words,
        masks: vec![M::default(); neurons * n_tiles],
        span_busy: vec![0u32; neurons * n_tiles],
    };
    for n in 0..neurons {
        let row = &win_pop[n * ctx.n_w..(n + 1) * ctx.n_w];
        for (ti, &(w0, w1)) in ctx.tiles.iter().enumerate() {
            let mut mask = 0u128;
            let (mut span, mut busiest) = (0u32, 0u32);
            for (i, &c) in row[w0..w1].iter().enumerate() {
                if c > 0 {
                    mask |= 1 << i;
                    span += u32::from(c);
                    busiest = busiest.max(u32::from(c));
                }
            }
            if mask != 0 {
                let idx = n * n_tiles + ti;
                rows.masks[idx] = M::from_u128(mask);
                rows.span_busy[idx] = span | (busiest << 16);
                rows.active[n * tile_words + ti / 64] |= 1u64 << (ti % 64);
            }
        }
    }
    rows
}

/// Builder dispatch + scan for one mask width.
fn run_word_kernel<M: TileMask>(
    inputs: &SimInputs,
    stsap: bool,
    geo: &LayerGeometry,
    ctx: &PtbCtx,
    input: &SpikeTensor,
    prep: Option<&PreparedLayer>,
    part: &WindowPartition,
) -> Tally {
    let rows = if ctx.tws == 1 {
        build_word_rows_tw1::<M>(
            input.neurons(),
            ctx,
            input.words(),
            input.words_per_neuron(),
        )
    } else if 64 % ctx.tws == 0 {
        build_word_rows_fused::<M>(input, ctx)
    } else {
        let win_pop = popcounts_of(prep, input, part);
        build_word_rows_pops::<M>(input.neurons(), ctx, &win_pop)
    };
    ptb_word_scan(inputs.threads, stsap, geo, ctx, &rows)
}

/// The bit-parallel PTB position scan: per position, walks the
/// receptive field once and scatters each neuron's *active* tiles
/// (guided by the tile-activity words) into per-tile entry buffers,
/// then packs and prices each nonempty tile from the hoisted maxima.
///
/// Bit-identity with [`ptb_scalar_scan`] holds term by term: the
/// hoisted span/mask/busiest are exactly the scalar walk's per-neuron
/// results, and an StSAP pair's busiest column is
/// `max(busiest_a, busiest_b)` because the pack only pairs *disjoint*
/// tags — per column at most one member is nonzero, so the columnwise
/// sums [`slot_cost`] maximizes are just the two rows interleaved.
/// The scatter order changes only the order of commutative saturating
/// sums (see [`PtbCtx`]).
fn ptb_word_scan<M: TileMask>(
    threads: usize,
    stsap: bool,
    geo: &LayerGeometry,
    ctx: &PtbCtx,
    rows: &WordRows<M>,
) -> Tally {
    let max_nw = ctx.tiles.iter().map(|&(w0, w1)| w1 - w0).max().unwrap_or(0);
    if max_nw <= 8 {
        return if ctx.tws == 1 {
            ptb_word_scan_counts(threads, stsap, geo, ctx, rows, max_nw as u32)
        } else {
            ptb_word_scan_buckets(threads, stsap, geo, ctx, rows, max_nw as u32)
        };
    }
    let n_tiles = rows.n_tiles;
    let full_masks: Vec<u128> = ctx
        .tiles
        .iter()
        .map(|&(w0, w1)| {
            let nw = w1 - w0;
            if nw == 128 {
                u128::MAX
            } else {
                (1u128 << nw) - 1
            }
        })
        .collect();
    // At TWS = 1 a window holds at most one spike, so every busiest
    // window is 1 ≤ min_beats: slot costs are uniform, the busiest
    // table is never consulted, and a neuron's spike span equals its
    // active-window count. At wider TWS the same collapse applies
    // per-tile whenever the gathered entries' busiest windows all sit
    // at or under the `min_beats` delivery floor (tracked as a running
    // max during the scatter).
    let uniform = ctx.tws == 1;
    scan_chunks(threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        let mut scratch = M::Scratch::default();
        // Per-tile entry buffers, filled in receptive-field order (the
        // same entry order the scalar walk produces) and drained —
        // cleared — as each tile is costed.
        let mut tile_tags: Vec<Vec<M>> = vec![Vec::new(); n_tiles];
        let mut tile_busy: Vec<Vec<u16>> = vec![Vec::new(); n_tiles];
        let mut span_acc = vec![0u64; n_tiles];
        let mut win_acc = vec![0u64; n_tiles];
        let mut max_busy = vec![0u16; n_tiles];
        for p in range {
            for &rn in geo.rf(p) {
                let act = &rows.active[rn * rows.tile_words..(rn + 1) * rows.tile_words];
                let row = rn * n_tiles;
                for (wi, &word) in act.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let ti = wi * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let idx = row + ti;
                        let mask = rows.masks[idx];
                        tile_tags[ti].push(mask);
                        let wc = u64::from(mask.to_u128().count_ones());
                        win_acc[ti] += wc;
                        if uniform {
                            span_acc[ti] += wc;
                        } else {
                            let sb = rows.span_busy[idx];
                            let b = (sb >> 16) as u16;
                            span_acc[ti] += u64::from(sb & 0xFFFF);
                            max_busy[ti] = max_busy[ti].max(b);
                            tile_busy[ti].push(b);
                        }
                    }
                }
            }
            for ti in 0..n_tiles {
                let raw = tile_tags[ti].len() as u64;
                if raw == 0 {
                    continue;
                }
                // Lockstep streaming: each slot stalls the wavefront for
                // the busiest column's accumulate count, floored at the
                // spike-link delivery time ([`slot_cost`]'s numbers, by
                // the disjointness argument above).
                let tile_uniform = uniform || u64::from(max_busy[ti]) <= ctx.min_beats;
                let stream_beats;
                let slots;
                if stsap {
                    let cost = if tile_uniform {
                        M::stream_cost_uniform(
                            &mut scratch,
                            &tile_tags[ti],
                            full_masks[ti],
                            ctx.min_beats,
                        )
                    } else {
                        M::stream_cost(
                            &mut scratch,
                            &tile_tags[ti],
                            &tile_busy[ti],
                            full_masks[ti],
                            ctx.min_beats,
                        )
                    };
                    sat!(tally.exact_pairs += cost.exact_pairs * ctx.row_tiles);
                    sat!(tally.near_pairs += cost.near_pairs * ctx.row_tiles);
                    slots = cost.slots;
                    stream_beats = cost.beats;
                } else if tile_uniform {
                    slots = raw;
                    stream_beats = raw * ctx.min_beats;
                } else {
                    slots = raw;
                    let mut beats = 0u64;
                    for &b in tile_busy[ti].iter() {
                        beats += u64::from(b).max(ctx.min_beats);
                    }
                    stream_beats = beats;
                }
                ctx.account(
                    &mut tally,
                    raw,
                    slots,
                    stream_beats,
                    span_acc[ti],
                    win_acc[ti],
                );
                tile_tags[ti].clear();
                tile_busy[ti].clear();
                span_acc[ti] = 0;
                win_acc[ti] = 0;
                max_busy[ti] = 0;
            }
        }
        tally
    })
}

/// [`ptb_word_scan`] specialized to `TWS = 1` and narrow tiles (at
/// most 8 windows — the paper's column count): every slot costs exactly
/// `min_beats` and which entries pair depends only on how many entries
/// carry each mask, so the gather never materializes an entry list at
/// all. The scatter bumps a per-(tile, mask) count in a flat arena
/// (`n_tiles × 2^max_nw` counters, L2-resident at 8 windows) and the
/// coster is [`count_cost_core`] straight over that arena. Bit-identity
/// holds because pair counts are order-independent (pass 1 pairs
/// disjoint classes; pass 2's class order is a total sort) and every
/// tally term is a commutative saturating sum.
fn ptb_word_scan_counts<M: TileMask>(
    threads: usize,
    stsap: bool,
    geo: &LayerGeometry,
    ctx: &PtbCtx,
    rows: &WordRows<M>,
    stride_bits: u32,
) -> Tally {
    let n_tiles = rows.n_tiles;
    let stride = 1usize << stride_bits;
    let full_masks: Vec<u16> = ctx
        .tiles
        .iter()
        .map(|&(w0, w1)| ((1u32 << (w1 - w0)) - 1) as u16)
        .collect();
    scan_chunks(threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        let mut classes: Vec<u32> = Vec::new();
        let mut counts = vec![0u32; n_tiles * stride];
        let mut present: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        let mut raw_acc = vec![0u64; n_tiles];
        let mut win_acc = vec![0u64; n_tiles];
        for p in range {
            for &rn in geo.rf(p) {
                let act = &rows.active[rn * rows.tile_words..(rn + 1) * rows.tile_words];
                let row = rn * n_tiles;
                for (wi, &word) in act.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let ti = wi * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let m = rows.masks[row + ti].to_u128() as u32;
                        raw_acc[ti] += 1;
                        win_acc[ti] += u64::from(m.count_ones());
                        if stsap {
                            let slot = &mut counts[ti * stride + m as usize];
                            if *slot == 0 {
                                present[ti].push(m);
                            }
                            *slot += 1;
                        }
                    }
                }
            }
            for ti in 0..n_tiles {
                let raw = raw_acc[ti];
                if raw == 0 {
                    continue;
                }
                let slots;
                let stream_beats;
                if stsap {
                    let arena = &mut counts[ti * stride..(ti + 1) * stride];
                    let cost = count_cost_core(
                        &mut classes,
                        arena,
                        &present[ti],
                        full_masks[ti],
                        ctx.min_beats,
                    );
                    sat!(tally.exact_pairs += cost.exact_pairs * ctx.row_tiles);
                    sat!(tally.near_pairs += cost.near_pairs * ctx.row_tiles);
                    slots = cost.slots;
                    stream_beats = cost.beats;
                    present[ti].clear();
                } else {
                    slots = raw;
                    stream_beats = raw * ctx.min_beats;
                }
                // At `TWS = 1` a neuron's spike span equals its
                // active-window count, so `win_acc` serves as both.
                ctx.account(
                    &mut tally,
                    raw,
                    slots,
                    stream_beats,
                    win_acc[ti],
                    win_acc[ti],
                );
                raw_acc[ti] = 0;
                win_acc[ti] = 0;
            }
        }
        tally
    })
}

/// [`ptb_word_scan`] specialized to narrow tiles at `TWS > 1`: the
/// scatter fills per-(tile, mask) busiest-value buckets in a flat
/// arena — entry order within each class is receptive-field order, the
/// same order the entry coster's own bucket fill produces — and the
/// coster is [`stream_cost_buckets`] straight over the arena, so the
/// per-entry tag/busiest buffers and the coster's whole entry pass
/// disappear. Tiles whose gathered busiest windows all sit at or under
/// the `min_beats` floor (tracked as a running max) collapse to the
/// count-only pairing on the same buckets. Without StSAP no pairing
/// happens at all: slot beats just accumulate during the scatter.
fn ptb_word_scan_buckets<M: TileMask>(
    threads: usize,
    stsap: bool,
    geo: &LayerGeometry,
    ctx: &PtbCtx,
    rows: &WordRows<M>,
    stride_bits: u32,
) -> Tally {
    let n_tiles = rows.n_tiles;
    let stride = 1usize << stride_bits;
    let full_masks: Vec<u16> = ctx
        .tiles
        .iter()
        .map(|&(w0, w1)| ((1u32 << (w1 - w0)) - 1) as u16)
        .collect();
    scan_chunks(threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        let mut classes: Vec<u32> = Vec::new();
        let mut buckets: Vec<Vec<u16>> = vec![Vec::new(); if stsap { n_tiles * stride } else { 0 }];
        let mut present: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        let mut raw_acc = vec![0u64; n_tiles];
        let mut win_acc = vec![0u64; n_tiles];
        let mut span_acc = vec![0u64; n_tiles];
        let mut beat_acc = vec![0u64; n_tiles];
        let mut max_busy = vec![0u16; n_tiles];
        for p in range {
            for &rn in geo.rf(p) {
                let act = &rows.active[rn * rows.tile_words..(rn + 1) * rows.tile_words];
                let row = rn * n_tiles;
                for (wi, &word) in act.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let ti = wi * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let idx = row + ti;
                        let m = rows.masks[idx].to_u128() as u32;
                        let sb = rows.span_busy[idx];
                        let b = (sb >> 16) as u16;
                        raw_acc[ti] += 1;
                        win_acc[ti] += u64::from(m.count_ones());
                        span_acc[ti] += u64::from(sb & 0xFFFF);
                        max_busy[ti] = max_busy[ti].max(b);
                        if stsap {
                            let bucket = &mut buckets[ti * stride + m as usize];
                            if bucket.is_empty() {
                                present[ti].push(m);
                            }
                            bucket.push(b);
                        } else {
                            beat_acc[ti] += u64::from(b).max(ctx.min_beats);
                        }
                    }
                }
            }
            for ti in 0..n_tiles {
                let raw = raw_acc[ti];
                if raw == 0 {
                    continue;
                }
                let slots;
                let stream_beats;
                if stsap {
                    let uniform = u64::from(max_busy[ti]) <= ctx.min_beats;
                    let arena = &mut buckets[ti * stride..(ti + 1) * stride];
                    let cost = stream_cost_buckets(
                        &mut classes,
                        arena,
                        &present[ti],
                        full_masks[ti],
                        ctx.min_beats,
                        uniform,
                    );
                    sat!(tally.exact_pairs += cost.exact_pairs * ctx.row_tiles);
                    sat!(tally.near_pairs += cost.near_pairs * ctx.row_tiles);
                    slots = cost.slots;
                    stream_beats = cost.beats;
                    present[ti].clear();
                } else {
                    // Σ busiest.max(min_beats) accumulated in the
                    // scatter; when the tile is uniform this equals
                    // `raw * min_beats` term by term.
                    slots = raw;
                    stream_beats = beat_acc[ti];
                }
                ctx.account(
                    &mut tally,
                    raw,
                    slots,
                    stream_beats,
                    span_acc[ti],
                    win_acc[ti],
                );
                raw_acc[ti] = 0;
                win_acc[ti] = 0;
                span_acc[ti] = 0;
                beat_acc[ti] = 0;
                max_busy[ti] = 0;
            }
        }
        tally
    })
}

/// The retired scalar PTB scan — the historical per-window walk, kept
/// verbatim as the serial yardstick behind
/// [`simulate_layer_reference`].
fn ptb_scalar_scan(
    threads: usize,
    stsap: bool,
    geo: &LayerGeometry,
    ctx: &PtbCtx,
    win_pop: &[u16],
) -> Tally {
    scan_chunks(threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        let mut tile_tags: Vec<u128> = Vec::new();
        let mut tile_pops: Vec<u16> = Vec::new(); // per entry × window popcounts
        for p in range {
            let rf = geo.rf(p);
            for &(w0, w1) in ctx.tiles {
                let nw = w1 - w0;
                let full_mask = if nw == 128 {
                    u128::MAX
                } else {
                    (1u128 << nw) - 1
                };
                tile_tags.clear();
                tile_pops.clear();
                let mut spikes_span = 0u64;
                let mut active_windows = 0u64;
                for &n in rf {
                    let base = n * ctx.n_w;
                    let mut mask = 0u128;
                    for (i, w) in (w0..w1).enumerate() {
                        let c = win_pop[base + w];
                        if c > 0 {
                            mask |= 1 << i;
                            spikes_span += u64::from(c);
                        }
                    }
                    if mask != 0 {
                        active_windows += u64::from(mask.count_ones());
                        tile_tags.push(mask);
                        for w in w0..w1 {
                            tile_pops.push(win_pop[base + w]);
                        }
                    }
                }
                let raw = tile_tags.len() as u64;
                if raw == 0 {
                    continue;
                }
                let pops_of = |i: usize| &tile_pops[i * nw..(i + 1) * nw];
                let mut stream_beats = 0u64;
                let slots;
                if stsap {
                    let packed = pack_tile(&tile_tags, full_mask);
                    sat!(tally.exact_pairs += packed.exact_pairs as u64 * ctx.row_tiles);
                    sat!(tally.near_pairs += packed.near_pairs as u64 * ctx.row_tiles);
                    slots = packed.entries_after() as u64;
                    for slot in &packed.slots {
                        let second = slot.second.map(pops_of);
                        stream_beats += slot_cost(pops_of(slot.first), second, ctx.min_beats);
                    }
                } else {
                    slots = raw;
                    for i in 0..raw as usize {
                        stream_beats += slot_cost(pops_of(i), None, ctx.min_beats);
                    }
                }
                ctx.account(
                    &mut tally,
                    raw,
                    slots,
                    stream_beats,
                    spikes_span,
                    active_windows,
                );
            }
        }
        tally
    })
}

/// PTB schedule (Section IV-C), optionally with StSAP (IV-D).
fn simulate_ptb(
    inputs: &SimInputs,
    stsap: bool,
    shape: ConvShape,
    input: &SpikeTensor,
    prep: Option<&PreparedLayer>,
    kernel: Kernel,
) -> LayerReport {
    let arch = &inputs.arch;
    let rows = u64::from(arch.array.rows());
    let cols = arch.array.cols() as usize;
    let tws = inputs.tw_size;
    let t = input.timesteps();
    let part = WindowPartition::new(t, tws as usize);
    let tiles = part.column_tiles(cols);
    let m = u64::from(shape.out_channels());

    // Shared read-only scan inputs, computed (or fetched from the
    // prepared memo) once: receptive fields and the spikes of each
    // (neuron, window), reused across every overlapping receptive field
    // and every worker.
    let geo = geometry_of(prep, shape);
    let n_w = part.num_windows();
    let ctx = PtbCtx {
        tiles: &tiles,
        tile_width: cols,
        n_w,
        tws,
        min_beats: u64::from(tws.div_ceil(arch.spike_link_bits)).max(1),
        m,
        row_tiles: m.div_ceil(rows),
        fill: arch.array.fill_cycles(),
        pbits: u64::from(arch.potential_bits),
    };
    let mut tally = match kernel {
        Kernel::Words => {
            WORD_KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
            // Narrow mask words keep a tile's whole lookup slice
            // cache-resident; the wide fallback covers any array.
            if cols <= 16 {
                run_word_kernel::<u16>(inputs, stsap, &geo, &ctx, input, prep, &part)
            } else {
                run_word_kernel::<u128>(inputs, stsap, &geo, &ctx, input, prep, &part)
            }
        }
        Kernel::Scalar => {
            let win_pop = popcounts_of(prep, input, &part);
            ptb_scalar_scan(inputs.threads, stsap, &geo, &ctx, &win_pop)
        }
    };
    sat!(tally.counts.compare_ops += m * geo.positions() as u64 * t as u64);
    finalize(
        inputs,
        Policy::Ptb { stsap },
        shape,
        input,
        tally,
        true,
        false,
        tws,
    )
}

/// Dense temporal baselines: the paper's baseline \[14\]
/// (`time_serial = false`; columns host `cols` consecutive time points,
/// weights shared within the group only) and the conventional
/// time-serial accelerator (`time_serial = true`; one time point at a
/// time, columns host output positions, weights refetched every time
/// point — Fig. 7a's alternating access).
fn simulate_dense_temporal(
    inputs: &SimInputs,
    shape: ConvShape,
    input: &SpikeTensor,
    time_serial: bool,
    prep: Option<&PreparedLayer>,
    kernel: Kernel,
) -> LayerReport {
    let arch = &inputs.arch;
    let rows = u64::from(arch.array.rows());
    let cols = arch.array.cols() as usize;
    let fill = arch.array.fill_cycles();
    let t = input.timesteps();
    let m = u64::from(shape.out_channels());
    let row_tiles = m.div_ceil(rows);
    let pbits = u64::from(arch.potential_bits);

    let geo = geometry_of(prep, shape);

    if time_serial {
        // Columns tile output positions; every time point is a separate
        // dense pass over the receptive field. RF length varies with
        // padding, so the accounting is exact per position: every tap of
        // every position is a streamed entry (the true tap count), and a
        // position tile's wavefront is bound by its longest receptive
        // field. Useful work is still gated by actual spikes.
        //
        // The scan is chunked at position-*tile* granularity (`cols`
        // consecutive positions per tile) so a tile's max-RF bound never
        // straddles two workers.
        let positions = geo.positions();
        let pos_tiles = positions.div_ceil(cols);
        let t_u = t as u64;
        // Whole-period fire counts, hoisted: each neuron appears in many
        // receptive fields, so popcounting once per neuron (instead of
        // once per (neuron, position) pair) saves a kernel-area factor.
        let fires: Vec<u64> = (0..input.neurons())
            .map(|n| u64::from(input.popcount_range(n, 0, t)))
            .collect();
        let mut tally = scan_chunks(inputs.threads, pos_tiles, |range| {
            let mut tally = Tally::default();
            for tile in range {
                let p0 = tile * cols;
                let p1 = ((tile + 1) * cols).min(positions);
                let mut rf_sum = 0u64;
                let mut spikes = 0u64;
                for p in p0..p1 {
                    rf_sum += geo.rf_len(p);
                    for &n in geo.rf(p) {
                        spikes += fires[n];
                    }
                }
                let rf_max = geo.max_rf_len(p0, p1);
                sat!(tally.compute_cycles += (rf_max + fill) * t_u * row_tiles);
                sat!(tally.useful_ops += spikes * m);
                sat!(tally.counts.ac_ops += spikes * m);
                sat!(tally.entries_before += rf_sum * t_u * row_tiles);
                // Weight-fetch driver: a dense RF per (position, time point).
                sat!(tally.sum_entries_raw += rf_sum * t_u);
                // Input bits: one bit per tap per time point, per row tile.
                let in_bits = rf_sum * t_u * row_tiles;
                tally.counts.transfer(
                    MemLevel::GlobalBuffer,
                    MemLevel::L1,
                    DataKind::InputSpike,
                    in_bits,
                );
                tally
                    .counts
                    .read(MemLevel::L1, DataKind::InputSpike, in_bits);
            }
            tally
        });
        tally.entries_after = tally.entries_before;
        // Membrane read+write per output neuron per time point — the
        // multi-bit movement bottleneck PTB amortizes per window.
        let mem = m * positions as u64 * t_u * pbits;
        tally
            .counts
            .read(MemLevel::GlobalBuffer, DataKind::Membrane, mem);
        tally
            .counts
            .write(MemLevel::GlobalBuffer, DataKind::Membrane, mem);
        sat!(tally.counts.compare_ops += m * positions as u64 * t_u);
        return finalize(
            inputs,
            Policy::TimeSerial,
            shape,
            input,
            tally,
            false,
            true,
            1,
        );
    }

    // Baseline [14]: columns tile groups of `cols` consecutive time
    // points (limited temporal parallelism), dense streaming.
    let part = WindowPartition::new(t, 1);
    let tiles = part.column_tiles(cols);
    let bit_at = match kernel {
        Kernel::Scalar => bits_of(input),
        Kernel::Words => Arc::new(Vec::new()),
    };
    let bit_at: &[u8] = &bit_at;
    if kernel == Kernel::Words {
        WORD_KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    }
    let mut tally = scan_chunks(inputs.threads, geo.positions(), |range| {
        let mut tally = Tally::default();
        // Per-column spike counts of the current tile (word kernel).
        let mut col_counts = vec![0u64; cols];
        for p in range {
            let rf = geo.rf(p);
            let rf_len = rf.len() as u64;
            for &(w0, w1) in &tiles {
                let nw = w1 - w0;
                let mut spikes_span = 0u64;
                let mut busiest = 0u64;
                match kernel {
                    // Word path: read the tile's ≤`cols` time points as
                    // funnel-shifted words and scatter only the *set*
                    // bits into per-column counts — identical sums to
                    // the per-point walk, `O(spikes)` stores.
                    Kernel::Words => {
                        col_counts[..nw].fill(0);
                        for &n in rf {
                            let mut s = w0;
                            while s < w1 {
                                let len = (w1 - s).min(64);
                                let mut word = input.spike_word(n, s, len);
                                while word != 0 {
                                    col_counts[s - w0 + word.trailing_zeros() as usize] += 1;
                                    word &= word - 1;
                                }
                                s += len;
                            }
                        }
                        for &c in &col_counts[..nw] {
                            busiest = busiest.max(c);
                            spikes_span += c;
                        }
                    }
                    Kernel::Scalar => {
                        for tp in w0..w1 {
                            let mut col_spikes = 0u64;
                            for &n in rf {
                                col_spikes += u64::from(bit_at[n * t + tp]);
                            }
                            busiest = busiest.max(col_spikes);
                            spikes_span += col_spikes;
                        }
                    }
                }
                let iter_cycles = rf_len.max(busiest) + fill;
                sat!(tally.compute_cycles += iter_cycles * row_tiles);
                sat!(tally.useful_ops += spikes_span * m);
                sat!(tally.counts.ac_ops += spikes_span * m);
                sat!(tally.entries_before += rf_len * row_tiles);
                sat!(tally.entries_after += rf_len * row_tiles);
                sat!(tally.sum_entries_raw += rf_len);
                let span_len = (w1 - w0) as u64;
                let in_bits = rf_len * span_len * row_tiles;
                tally.counts.transfer(
                    MemLevel::GlobalBuffer,
                    MemLevel::L1,
                    DataKind::InputSpike,
                    in_bits,
                );
                tally
                    .counts
                    .read(MemLevel::L1, DataKind::InputSpike, in_bits);
                tally
                    .counts
                    .read(MemLevel::GlobalBuffer, DataKind::Membrane, m * pbits);
                tally
                    .counts
                    .write(MemLevel::GlobalBuffer, DataKind::Membrane, m * pbits);
            }
        }
        tally
    });
    sat!(tally.counts.compare_ops += m * geo.positions() as u64 * t as u64);
    finalize(
        inputs,
        Policy::BaselineTemporal,
        shape,
        input,
        tally,
        false,
        true,
        1,
    )
}

/// The non-spiking ANN accelerator of the Fig. 12(b) comparison: one
/// dense pass, 8-bit activations, MAC PEs, good weight reuse
/// (SCALE-Sim-class output-stationary mapping on the same 128-PE array).
fn simulate_ann(
    inputs: &SimInputs,
    shape: ConvShape,
    input: &SpikeTensor,
    prep: Option<&PreparedLayer>,
) -> LayerReport {
    let arch = &inputs.arch;
    let rows = u64::from(arch.array.rows());
    let cols = arch.array.cols() as usize;
    let fill = arch.array.fill_cycles();
    let m = u64::from(shape.out_channels());
    let row_tiles = m.div_ceil(rows);
    let abits = u64::from(arch.weight_bits); // activations share the 8-bit width
    let pbits = u64::from(arch.potential_bits);

    let geo = geometry_of(prep, shape);
    let positions = geo.positions();
    let rf_total = geo.rf_total();

    // Exact per position tile: the wavefront is bound by the tile's
    // longest receptive field, and every tap of every position is a
    // streamed entry (no integer-mean truncation at padded edges).
    let mut pass_cycles = 0u64;
    let mut tile = 0;
    while tile * cols < positions {
        let p0 = tile * cols;
        let p1 = ((tile + 1) * cols).min(positions);
        pass_cycles += geo.max_rf_len(p0, p1) + fill;
        tile += 1;
    }

    let entries_before = rf_total * row_tiles;
    let mut tally = Tally {
        compute_cycles: pass_cycles * row_tiles,
        useful_ops: rf_total * m, // dense: every MAC is useful work
        entries_before,
        entries_after: entries_before,
        sum_entries_raw: rf_total, // one dense pass over every position
        ..Tally::default()
    };
    tally.counts.mac_ops = rf_total * m;

    // Activations: 8-bit, per tap per position, staged per row tile.
    let in_bits = rf_total * abits * row_tiles;
    tally.counts.transfer(
        MemLevel::GlobalBuffer,
        MemLevel::L1,
        DataKind::InputSpike,
        in_bits,
    );
    tally
        .counts
        .read(MemLevel::L1, DataKind::InputSpike, in_bits);
    // Psums held in-PE; outputs written once as 8-bit activations.
    let out_bits = m * positions as u64 * abits;
    tally
        .counts
        .write(MemLevel::GlobalBuffer, DataKind::OutputSpike, out_bits);
    tally
        .counts
        .write(MemLevel::Dram, DataKind::OutputSpike, out_bits);
    let psum_bits = sat_mul(tally.counts.mac_ops, pbits, &mut tally.counts.saturated);
    tally
        .counts
        .read(MemLevel::Scratchpad, DataKind::Psum, psum_bits);
    tally
        .counts
        .write(MemLevel::Scratchpad, DataKind::Psum, psum_bits);
    sat!(tally.counts.compare_ops += m * positions as u64); // ReLU

    // Weight movement (resident rule), mirroring `finalize` but with the
    // ANN's dense input already counted above; input DRAM traffic is
    // 8-bit dense.
    let rf = shape.receptive_field() as u64;
    let wbits = u64::from(arch.weight_bits);
    for rt in 0..row_tiles {
        let rows_rt = rows.min(m - rt * rows);
        let edge = sat_mul(
            sat_mul(tally.sum_entries_raw, rows_rt, &mut tally.counts.saturated),
            wbits,
            &mut tally.counts.saturated,
        );
        tally.counts.read(MemLevel::L1, DataKind::Weight, edge);
        let ws = rows_rt * rf * wbits;
        let gb_to_l1 = if ws <= inputs.l1_weight_capacity_bits() {
            ws
        } else {
            edge
        };
        tally.counts.transfer(
            MemLevel::GlobalBuffer,
            MemLevel::L1,
            DataKind::Weight,
            gb_to_l1,
        );
        let dram = if ws <= inputs.gb_weight_capacity_bits() {
            ws
        } else {
            gb_to_l1
        };
        tally.counts.transfer(
            MemLevel::Dram,
            MemLevel::GlobalBuffer,
            DataKind::Weight,
            dram,
        );
    }
    let in_dram = input.neurons() as u64 * abits;
    let passes = if in_dram <= inputs.gb_input_capacity_bits() {
        1
    } else {
        row_tiles
    };
    tally.counts.transfer(
        MemLevel::Dram,
        MemLevel::GlobalBuffer,
        DataKind::InputSpike,
        in_dram * passes,
    );

    let dram_bytes = tally.counts.dram_traffic_bits() as f64 / 8.0;
    let dram_cycles = (dram_bytes / arch.dram_bytes_per_cycle()).ceil() as u64;
    let cycles = tally.compute_cycles.max(dram_cycles);
    let pe_cycles = sat_mul(
        u64::from(arch.array.pe_count()),
        cycles,
        &mut tally.counts.saturated,
    );
    let energy = inputs.energy.evaluate(&tally.counts);
    LayerReport {
        policy: Policy::Ann,
        tw_size: 1,
        energy,
        cycles,
        seconds: arch.cycles_to_seconds(cycles),
        useful_ops: tally.useful_ops,
        pe_cycles,
        entries_before: tally.entries_before,
        entries_after: tally.entries_after,
        exact_pairs: 0,
        near_pairs: 0,
        counts: tally.counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;

    fn small_shape() -> ConvShape {
        ConvShape::new(6, 3, 4, 8, 1).unwrap()
    }

    fn sparse_input(shape: ConvShape, t: usize) -> SpikeTensor {
        SpikeTensor::from_fn(shape.ifmap_neurons(), t, |n, tp| {
            n % 3 != 2 && (n * 7 + tp * 11) % 17 == 0
        })
    }

    #[test]
    fn ptb_beats_baseline_on_sparse_input() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        let inputs = SimInputs::hpca22(8);
        let ptb = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input);
        let serial = simulate_layer(&inputs, Policy::TimeSerial, shape, &input);
        assert!(ptb.energy_joules() < base.energy_joules());
        assert!(ptb.cycles < base.cycles);
        assert!(ptb.edp() < base.edp());
        assert!(
            base.edp() <= serial.edp(),
            "limited temporal parallelism beats pure time-serial"
        );
    }

    #[test]
    fn stsap_reduces_slots_never_energy_increase_latency() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        let inputs = SimInputs::hpca22(8);
        let plain = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let packed = simulate_layer(&inputs, Policy::ptb_with_stsap(), shape, &input);
        assert!(packed.entries_after <= plain.entries_after);
        assert!(packed.cycles <= plain.cycles);
        assert_eq!(packed.entries_before, plain.entries_before);
        assert_eq!(
            packed.counts.ac_ops, plain.counts.ac_ops,
            "packing never changes the work"
        );
    }

    #[test]
    fn ac_ops_equal_spikes_times_channels() {
        // With no padding every input neuron appears in a known number of
        // receptive fields; check against a brute-force count.
        let shape = ConvShape::new(5, 3, 2, 4, 1).unwrap();
        let input = SpikeTensor::from_fn(shape.ifmap_neurons(), 16, |n, t| (n + t) % 5 == 0);
        let inputs = SimInputs::hpca22(4);
        let r = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let mut expected = 0u64;
        for x in 0..shape.ofmap_side() {
            for y in 0..shape.ofmap_side() {
                for n in shape.receptive_field_indices(x, y) {
                    expected += u64::from(input.popcount_range(n, 0, 16));
                }
            }
        }
        expected *= u64::from(shape.out_channels());
        assert_eq!(r.counts.ac_ops, expected);
        assert_eq!(r.useful_ops, expected);
    }

    #[test]
    fn all_snn_policies_do_identical_useful_work() {
        let shape = small_shape();
        let input = sparse_input(shape, 40);
        let inputs = SimInputs::hpca22(8);
        let a = simulate_layer(&inputs, Policy::ptb(), shape, &input).useful_ops;
        let b = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input).useful_ops;
        let c = simulate_layer(&inputs, Policy::TimeSerial, shape, &input).useful_ops;
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn silent_input_costs_almost_nothing_under_ptb() {
        let shape = small_shape();
        let silent = SpikeTensor::new(shape.ifmap_neurons(), 64);
        let inputs = SimInputs::hpca22(8);
        let r = simulate_layer(&inputs, Policy::ptb(), shape, &silent);
        assert_eq!(r.useful_ops, 0);
        assert_eq!(r.entries_before, 0);
        let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &silent);
        assert!(base.cycles > r.cycles, "dense baseline pays for silence");
    }

    #[test]
    fn larger_tw_reduces_weight_traffic_but_grows_input_traffic() {
        // Needs a row-tile weight working set larger than L1 so weights
        // take the per-iteration refetch path (as every Table V layer does).
        let shape = ConvShape::new(6, 3, 8, 32, 1).unwrap();
        let input = sparse_input(shape, 64);
        let w_traffic = |tw: u32| {
            let r = simulate_layer(&SimInputs::hpca22(tw), Policy::ptb(), shape, &input);
            (
                r.counts.read_bits(MemLevel::GlobalBuffer, DataKind::Weight),
                r.counts.read_bits(MemLevel::L1, DataKind::InputSpike),
            )
        };
        let (w1, i1) = w_traffic(1);
        let (w16, i16) = w_traffic(16);
        assert!(
            w16 < w1,
            "weight traffic must shrink with TW ({w16} !< {w1})"
        );
        assert!(i16 > i1, "input traffic must grow with TW ({i16} !> {i1})");
    }

    #[test]
    fn utilization_improves_with_ptb() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        let inputs = SimInputs::hpca22(8);
        let ptb = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input);
        assert!(ptb.utilization() > base.utilization());
    }

    #[test]
    fn ann_runs_one_dense_pass() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        let inputs = SimInputs::hpca22(8);
        let ann = simulate_layer(&inputs, Policy::Ann, shape, &input);
        assert_eq!(ann.counts.ac_ops, 0);
        assert!(ann.counts.mac_ops > 0);
        let dense_macs: u64 = {
            let mut rf_total = 0u64;
            for x in 0..shape.ofmap_side() {
                for y in 0..shape.ofmap_side() {
                    rf_total += shape.receptive_field_indices(x, y).len() as u64;
                }
            }
            rf_total * u64::from(shape.out_channels())
        };
        assert_eq!(ann.counts.mac_ops, dense_macs);
    }

    #[test]
    fn event_driven_skips_silent_timepoints() {
        let shape = small_shape();
        let silent = SpikeTensor::new(shape.ifmap_neurons(), 64);
        let r = simulate_layer(&SimInputs::hpca22(1), Policy::EventDriven, shape, &silent);
        assert_eq!(r.useful_ops, 0);
        assert_eq!(r.entries_before, 0);
        assert_eq!(r.counts.read_bits(MemLevel::L1, DataKind::Weight), 0);
    }

    #[test]
    fn ptb_benefit_over_event_driven_grows_with_rate() {
        // The Fig. 12(b) trend: higher firing rates amortize PTB's
        // windowed weight fetch better relative to per-event refetching.
        let shape = ConvShape::new(6, 3, 8, 32, 1).unwrap();
        let ratio_at = |num: usize, den: usize| {
            let input = SpikeTensor::from_fn(shape.ifmap_neurons(), 64, |n, t| {
                (n * 31 + t * 17) % den < num
            });
            let ptb = simulate_layer(&SimInputs::hpca22(8), Policy::ptb(), shape, &input);
            let ev = simulate_layer(&SimInputs::hpca22(1), Policy::EventDriven, shape, &input);
            ev.counts.read_bits(MemLevel::L1, DataKind::Weight) as f64
                / ptb.counts.read_bits(MemLevel::L1, DataKind::Weight) as f64
        };
        let low = ratio_at(1, 50); // ~2% rate
        let high = ratio_at(1, 5); // ~20% rate
        assert!(
            high > low,
            "weight amortization must grow with rate: low {low}, high {high}"
        );
    }

    #[test]
    fn event_driven_latency_suffers_without_parallelism() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        let inputs = SimInputs::hpca22(8);
        let ptb = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let ev = simulate_layer(&SimInputs::hpca22(1), Policy::EventDriven, shape, &input);
        assert!(
            ev.cycles > ptb.cycles,
            "fill overhead per time point dominates"
        );
        assert_eq!(ev.useful_ops, ptb.useful_ops);
    }

    #[test]
    #[should_panic]
    fn mismatched_input_panics() {
        let shape = small_shape();
        let input = SpikeTensor::new(3, 8);
        simulate_layer(&SimInputs::hpca22(8), Policy::ptb(), shape, &input);
    }

    #[test]
    fn fc_layer_simulates() {
        // FC as 1x1-output conv.
        let shape = ConvShape::new(1, 1, 64, 32, 1).unwrap();
        let input = SpikeTensor::from_fn(64, 100, |n, t| (n + t) % 9 == 0);
        let inputs = SimInputs::hpca22(8);
        let ptb = simulate_layer(&inputs, Policy::ptb(), shape, &input);
        let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input);
        assert!(ptb.edp() < base.edp());
    }

    #[test]
    fn parallel_scan_is_bit_identical_for_every_policy() {
        // The determinism guarantee: thread count never changes a report,
        // including on a padded shape where receptive fields are uneven
        // and chunk boundaries cut through edge positions.
        let shape = ConvShape::with_padding(6, 3, 4, 8, 1, 1).unwrap();
        let input = sparse_input(shape, 40);
        let serial = SimInputs::hpca22(8);
        for threads in [2, 3, 7, 64] {
            let parallel = serial.with_threads(threads);
            for policy in [
                Policy::ptb(),
                Policy::ptb_with_stsap(),
                Policy::BaselineTemporal,
                Policy::TimeSerial,
                Policy::Ann,
                Policy::EventDriven,
            ] {
                let a = simulate_layer(&serial, policy, shape, &input);
                let b = simulate_layer(&parallel, policy, shape, &input);
                assert_eq!(a, b, "policy {policy:?} with {threads} threads diverged");
            }
        }
    }

    #[test]
    fn prepared_reports_match_fresh_for_every_policy() {
        // The incremental re-simulation guarantee: reusing a
        // PreparedLayer's memoized geometry/popcount tables across a TW
        // and policy sweep yields reports bit-identical to the fresh
        // path, serial and threaded, on a padded shape with uneven
        // receptive fields.
        let shape = ConvShape::with_padding(6, 3, 4, 8, 1, 1).unwrap();
        let input = sparse_input(shape, 40);
        let prep = crate::prepared::PreparedLayer::new(shape, std::sync::Arc::new(input.clone()));
        for tw in [1u32, 8, 32] {
            for threads in [1usize, 3] {
                let inputs = SimInputs::hpca22(tw).with_threads(threads);
                for policy in [
                    Policy::ptb(),
                    Policy::ptb_with_stsap(),
                    Policy::BaselineTemporal,
                    Policy::TimeSerial,
                    Policy::Ann,
                    Policy::EventDriven,
                ] {
                    let fresh = simulate_layer(&inputs, policy, shape, &input);
                    let prepared = simulate_layer_prepared(&inputs, policy, &prep);
                    assert_eq!(
                        fresh, prepared,
                        "{policy:?} tw={tw} threads={threads} diverged under reuse"
                    );
                }
            }
        }
        // Every Fig. 10 TW size divides a storage word, so the word
        // kernel builds its row tables straight from the spike words
        // and never materializes (or memoizes) a popcount table.
        assert_eq!(prep.memoized_tw_sizes(), 0);
    }

    #[test]
    fn slot_cost_is_exact_for_large_windows() {
        // Regression: an StSAP pair of 200-spike windows sums to 400
        // beats, which overflowed the old `u8 + u8` cost (debug panic,
        // wraparound in release). The floor also still applies.
        let a = [200u16, 3];
        let b = [150u16, 7];
        assert_eq!(slot_cost(&a, Some(&b), 1), 350);
        assert_eq!(slot_cost(&a, None, 1), 200);
        assert_eq!(slot_cost(&[0u16, 0], None, 5), 5);
        assert_eq!(slot_cost(&[], None, 2), 2);
    }

    #[test]
    fn tally_merge_saturates_instead_of_wrapping() {
        let mut a = Tally {
            compute_cycles: u64::MAX - 1,
            ..Tally::default()
        };
        let b = Tally {
            compute_cycles: 5,
            ..Tally::default()
        };
        a.merge(b);
        assert_eq!(a.compute_cycles, u64::MAX);
        assert_eq!(a.counts.saturated, 1);
    }

    #[test]
    fn realistic_layers_never_saturate() {
        let shape = small_shape();
        let input = sparse_input(shape, 64);
        for policy in [
            Policy::ptb(),
            Policy::ptb_with_stsap(),
            Policy::BaselineTemporal,
            Policy::TimeSerial,
            Policy::Ann,
            Policy::EventDriven,
        ] {
            let tw = if matches!(policy, Policy::Ptb { .. }) {
                8
            } else {
                1
            };
            let r = simulate_layer(&SimInputs::hpca22(tw), policy, shape, &input);
            assert_eq!(r.counts.saturated, 0, "{policy:?} saturated");
        }
    }

    #[test]
    fn word_kernel_matches_scalar_reference_for_every_policy() {
        // The kernel equivalence pin: the bit-parallel word paths must
        // reproduce the retired per-bit reference bit-for-bit — on a
        // padded shape (uneven receptive fields) and a period that is
        // not a multiple of 64 (live tail masking), across TW sizes
        // that exercise the one-word, two-word, and tag-mask gathers.
        let shape = ConvShape::with_padding(6, 3, 4, 8, 1, 1).unwrap();
        for t in [40usize, 70, 128] {
            let input = sparse_input(shape, t);
            for tw in [1u32, 4, 8, 32, 64] {
                let inputs = SimInputs::hpca22(tw);
                for policy in [
                    Policy::ptb(),
                    Policy::ptb_with_stsap(),
                    Policy::BaselineTemporal,
                    Policy::TimeSerial,
                    Policy::Ann,
                    Policy::EventDriven,
                ] {
                    let calls_before = word_kernel_calls();
                    let word = simulate_layer(&inputs, policy, shape, &input);
                    let scalar = simulate_layer_reference(&inputs, policy, shape, &input);
                    assert_eq!(
                        word, scalar,
                        "{policy:?} t={t} tw={tw}: word kernel diverged from reference"
                    );
                    if matches!(
                        policy,
                        Policy::Ptb { .. } | Policy::BaselineTemporal | Policy::EventDriven
                    ) {
                        assert!(
                            word_kernel_calls() > calls_before,
                            "{policy:?}: word kernel path was not exercised"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn word_kernel_matches_scalar_reference_on_wide_arrays() {
        // Wide-column arrays pin the paths the default 8-column setup
        // never reaches: `u128` tile masks (cols > 16), the
        // funnel-shift TW=1 builder fallback (a tile width that does
        // not divide a storage word), and the generic scan's uniform
        // branch (tiles too wide for the count-scatter arena).
        // cols = 20 exercises all three at once; 32 takes the fused
        // wide-field builder; 128 is the Fig. 9(b) extreme, one tile
        // spanning two window words.
        use systolic_sim::{ArchConfig, ArrayDims};
        let shape = ConvShape::with_padding(6, 3, 4, 8, 1, 1).unwrap();
        let input = sparse_input(shape, 70);
        for cols in [20u32, 32, 128] {
            let inputs = SimInputs {
                arch: ArchConfig::hpca22().with_array(ArrayDims::new(4, cols)),
                ..SimInputs::hpca22(1)
            };
            for tw in [1u32, 8, 32] {
                let inputs = SimInputs {
                    tw_size: tw,
                    ..inputs
                };
                inputs.assert_valid();
                for policy in [Policy::ptb(), Policy::ptb_with_stsap()] {
                    let word = simulate_layer(&inputs, policy, shape, &input);
                    let scalar = simulate_layer_reference(&inputs, policy, shape, &input);
                    assert_eq!(
                        word, scalar,
                        "{policy:?} cols={cols} tw={tw}: wide-mask kernel diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn compare_ops_accumulation_saturates_instead_of_wrapping() {
        // The satellite fix: `compare_ops` now goes through `sat!` in
        // every policy, so a clamp is counted instead of wrapping.
        let mut tally = Tally::default();
        tally.counts.compare_ops = u64::MAX - 3;
        sat!(tally.counts.compare_ops += 10);
        assert_eq!(tally.counts.compare_ops, u64::MAX);
        assert_eq!(tally.counts.saturated, 1);
        // Below the clamp it is plain addition — bit-identical to `+=`.
        let mut tally = Tally::default();
        sat!(tally.counts.compare_ops += 7);
        assert_eq!(tally.counts.compare_ops, 7);
        assert_eq!(tally.counts.saturated, 0);
    }

    #[test]
    fn dense_baselines_count_true_taps_under_padding() {
        // Regression for the truncating integer mean: with padding the
        // total tap count is not divisible by the position count, and
        // `rf_total / positions` silently dropped the remainder. The
        // exact accounting reports the true tap count.
        let shape = ConvShape::with_padding(6, 3, 2, 4, 1, 1).unwrap();
        let input = sparse_input(shape, 16);
        let inputs = SimInputs::hpca22(1);
        let geo = crate::geom::LayerGeometry::new(shape);
        let taps = geo.rf_total();
        assert_ne!(
            taps % geo.positions() as u64,
            0,
            "padding must make the per-position mean fractional"
        );
        let rows = u64::from(inputs.arch.array.rows());
        let row_tiles = u64::from(shape.out_channels()).div_ceil(rows);
        let t = input.timesteps() as u64;
        // Time-serial: every tap of every position, at every time point.
        let serial = simulate_layer(&inputs, Policy::TimeSerial, shape, &input);
        assert_eq!(serial.entries_before, taps * t * row_tiles);
        // ANN: every tap of every position, once.
        let ann = simulate_layer(&inputs, Policy::Ann, shape, &input);
        assert_eq!(ann.entries_before, taps * row_tiles);
        // Baseline [14]: every tap, once per column tile of time points.
        let cols = u64::from(inputs.arch.array.cols());
        let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input);
        assert_eq!(base.entries_before, taps * t.div_ceil(cols) * row_tiles);
    }
}

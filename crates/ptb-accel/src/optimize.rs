//! Joint architectural optimization (Section VI-A): choosing the array
//! dimension and time-window size.
//!
//! The paper fixes the PE count (128) and jointly explores array shape
//! and TW size against a workload, settling on 16×8 and TW ≈ 8. This
//! module provides that search as a library API: give it layers with
//! activity and a candidate space, get the EDP-optimal configuration
//! (globally, or per layer for the fine-grained variant Section VII
//! suggests).

use snn_core::shape::ConvShape;
use snn_core::spike::SpikeTensor;
use systolic_sim::array::ArrayDims;
use systolic_sim::{ArchConfig, EnergyModel};

use crate::config::{Policy, SimInputs};
use crate::report::LayerReport;
use crate::sim::simulate_layer;

/// The search space: candidate array shapes and TW sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Candidate array geometries (all same PE count for fairness).
    pub shapes: Vec<ArrayDims>,
    /// Candidate time-window sizes.
    pub tw_sizes: Vec<u32>,
}

impl SearchSpace {
    /// The paper's space: every 128-PE factorization × TW ∈ {1..64}.
    pub fn hpca22() -> Self {
        SearchSpace {
            shapes: ArrayDims::factorizations(128),
            tw_sizes: SimInputs::tw_sweep().to_vec(),
        }
    }

    /// Restricts the space to shapes whose TW candidates fit the
    /// scratchpad of `arch`.
    pub fn feasible_tws(&self, arch: &ArchConfig) -> Vec<u32> {
        self.tw_sizes
            .iter()
            .copied()
            .filter(|&tw| u64::from(tw) <= arch.psum_slots() && tw <= 64)
            .collect()
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Array geometry.
    pub shape: ArrayDims,
    /// Time-window size.
    pub tw: u32,
    /// Summed EDP over the evaluated layers (joule-seconds).
    pub edp: f64,
}

/// Result of a joint search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The EDP-optimal configuration.
    pub best: Candidate,
    /// Every evaluated candidate, for inspection/plotting.
    pub evaluated: Vec<Candidate>,
}

/// Searches the joint space for the configuration minimizing total EDP
/// over the given `(shape, activity)` layers under `policy`.
///
/// # Panics
///
/// Panics if the space or the layer list is empty, or an activity
/// tensor mismatches its shape (propagated from the simulator).
pub fn search_joint(
    layers: &[(ConvShape, &SpikeTensor)],
    policy: Policy,
    space: &SearchSpace,
) -> SearchResult {
    assert!(!layers.is_empty(), "need at least one layer");
    assert!(
        !space.shapes.is_empty() && !space.tw_sizes.is_empty(),
        "search space must be non-empty"
    );
    let mut evaluated = Vec::new();
    for &shape in &space.shapes {
        let arch = ArchConfig::hpca22().with_array(shape);
        for &tw in &space.feasible_tws(&arch) {
            let inputs = SimInputs {
                arch,
                energy: EnergyModel::cacti_32nm(),
                tw_size: tw,
                threads: 1,
            };
            let edp: f64 = layers
                .iter()
                .map(|&(s, a)| simulate_layer(&inputs, policy, s, a).edp())
                .sum();
            evaluated.push(Candidate { shape, tw, edp });
        }
    }
    let best = evaluated
        .iter()
        .min_by(|a, b| a.edp.total_cmp(&b.edp))
        .expect("space is non-empty")
        .clone();
    SearchResult { best, evaluated }
}

/// Per-layer fine-grained TW selection at a fixed array shape
/// (Section VII's "layerwise fine-grained optimization"): returns each
/// layer's best TW and report.
///
/// # Panics
///
/// Panics if `tw_sizes` is empty.
pub fn per_layer_tw(
    layers: &[(ConvShape, &SpikeTensor)],
    policy: Policy,
    shape: ArrayDims,
    tw_sizes: &[u32],
) -> Vec<(u32, LayerReport)> {
    assert!(!tw_sizes.is_empty(), "need TW candidates");
    layers
        .iter()
        .map(|&(s, a)| {
            tw_sizes
                .iter()
                .map(|&tw| {
                    let inputs = SimInputs {
                        arch: ArchConfig::hpca22().with_array(shape),
                        energy: EnergyModel::cacti_32nm(),
                        tw_size: tw,
                        threads: 1,
                    };
                    (tw, simulate_layer(&inputs, policy, s, a))
                })
                .min_by(|a, b| a.1.edp().total_cmp(&b.1.edp()))
                .expect("candidates are non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (ConvShape, SpikeTensor) {
        let shape = ConvShape::new(8, 3, 8, 16, 1).unwrap();
        let input =
            SpikeTensor::from_fn(shape.ifmap_neurons(), 64, |n, t| (n * 7 + t * 3) % 11 == 0);
        (shape, input)
    }

    #[test]
    fn joint_search_prefers_balanced_shapes() {
        let (shape, input) = workload();
        let space = SearchSpace {
            shapes: vec![
                ArrayDims::new(128, 1),
                ArrayDims::new(16, 8),
                ArrayDims::new(8, 16),
                ArrayDims::new(1, 128),
            ],
            tw_sizes: vec![1, 8, 32],
        };
        let result = search_joint(&[(shape, &input)], Policy::ptb(), &space);
        assert_eq!(result.evaluated.len(), 12);
        let best_rows = result.best.shape.rows();
        assert!(
            (2..=64).contains(&best_rows),
            "extreme shape won: {}",
            result.best.shape
        );
        // The winner must actually be the minimum of the evaluated set.
        assert!(result.evaluated.iter().all(|c| c.edp >= result.best.edp));
    }

    #[test]
    fn feasible_tws_respect_scratchpad() {
        let mut arch = ArchConfig::hpca22();
        arch.potential_bits = 16; // 48 psum slots
        let space = SearchSpace::hpca22();
        let tws = space.feasible_tws(&arch);
        assert!(tws.contains(&32));
        assert!(!tws.contains(&64));
    }

    #[test]
    fn per_layer_tw_never_worse_than_any_single_tw() {
        let (shape, input) = workload();
        let shape2 = ConvShape::new(1, 1, 128, 64, 1).unwrap();
        let input2 = SpikeTensor::from_fn(128, 64, |n, t| (n + t) % 13 == 0);
        let layers = [(shape, &input), (shape2, &input2)];
        let tws = [1u32, 8, 64];
        let per_layer = per_layer_tw(&layers, Policy::ptb(), ArrayDims::new(16, 8), &tws);
        let per_layer_edp: f64 = per_layer.iter().map(|(_, r)| r.edp()).sum();
        for &tw in &tws {
            let global: f64 = layers
                .iter()
                .map(|&(s, a)| simulate_layer(&SimInputs::hpca22(tw), Policy::ptb(), s, a).edp())
                .sum();
            assert!(
                per_layer_edp <= global + 1e-18,
                "per-layer {per_layer_edp} worse than global tw={tw} ({global})"
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_layer_list_panics() {
        search_joint(&[], Policy::ptb(), &SearchSpace::hpca22());
    }
}

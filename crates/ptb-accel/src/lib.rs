//! # ptb-accel
//!
//! The paper's contribution: **Parallel Time Batching (PTB)** and
//! **Spatiotemporally-non-overlapping Spiking Activity Packing (StSAP)**
//! scheduling for a systolic-array SNN accelerator, plus the baseline
//! accelerators it is evaluated against (Lee, Zhang & Li, HPCA 2022).
//!
//! ## Concepts (Section IV of the paper)
//!
//! * The operational period (*time stride*, TS) is split into
//!   *time windows* (TWs) of `TWS` time points ([`window`]).
//! * One pre-synaptic neuron's activity over one TW, integrated into one
//!   post-synaptic neuron, is a *time batch* (TB) — the unit of work one
//!   PE executes. A neuron's *TB-tag* ([`tag::TbTag`]) marks which of its
//!   TWs contain any spike; all-zero tags are *silent* neurons (skipped),
//!   all-ones are *bursting*, the rest *non-bursting*.
//! * PTB maps post-synaptic neurons to array rows and consecutive TWs to
//!   array columns, so weights are reused across the TW's time points
//!   *and* across the row's PEs ([`sim`]).
//! * StSAP pairs non-bursting neurons with non-overlapping tags so two
//!   neurons share one streaming slot ([`stsap`]).
//!
//! ## Modules
//!
//! * [`tag`] — TB-tags and neuron classification.
//! * [`window`] — time-window partitioning of the operational period.
//! * [`stsap`] — the greedy complement-packing algorithm (Fig. 8).
//! * [`config`] — simulator inputs (Table III), including the
//!   [`SimInputs::threads`] worker-count knob of the parallel scan.
//! * [`geom`] — per-layer receptive-field geometry and spike popcount
//!   tables, computed once per simulation and shared by every policy
//!   and every scan worker.
//! * [`prepared`] — [`PreparedLayer`]: memoized derived tables for
//!   incremental re-simulation across TW/policy sweeps
//!   ([`simulate_layer_prepared`] is bit-identical to
//!   [`simulate_layer`]).
//! * [`sim`] — the analytic layer simulator for PTB and the baselines
//!   (conventional time-serial, dense temporal tiling \[14\], and the
//!   non-spiking ANN accelerator of the Fig. 12(b) comparison).
//! * [`report`] — per-layer and per-network results: energy breakdown,
//!   latency, utilization, and EDP.
//! * `reference` — a bit-exact functional check that PTB's batched
//!   Step A / Step B decomposition (Eqs. 7–8) matches the serial
//!   reference dynamics (Eqs. 1–3).
//! * [`audit`] — the runtime audit layer (`PTB_VERIFY=off|sample|full`):
//!   re-derives structural invariants (tile coverage, popcount memos,
//!   StSAP conservation) and replays sampled neurons through
//!   `reference`, reporting divergences as typed
//!   [`snn_core::error::AuditError`] findings with first-divergence
//!   coordinates.
//!
//! ## Quick start
//!
//! ```
//! use ptb_accel::config::SimInputs;
//! use ptb_accel::sim::simulate_layer;
//! use ptb_accel::config::Policy;
//! use snn_core::shape::ConvShape;
//! use snn_core::spike::SpikeTensor;
//!
//! let shape = ConvShape::new(8, 3, 4, 16, 1).unwrap();
//! let input = SpikeTensor::from_fn(shape.ifmap_neurons(), 64, |n, t| (n + t) % 13 == 0);
//! let inputs = SimInputs::hpca22(8); // TW size 8
//! let ptb = simulate_layer(&inputs, Policy::ptb_with_stsap(), shape, &input);
//! let base = simulate_layer(&inputs, Policy::BaselineTemporal, shape, &input);
//! assert!(ptb.edp() < base.edp());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod config;
pub mod geom;
pub mod optimize;
pub mod prepared;
pub mod reference;
pub mod report;
pub mod schedule;
pub mod sim;
pub mod stsap;
pub mod tag;
pub mod window;

pub use audit::{audit_layer, AuditLevel, AuditSummary};
pub use config::{Policy, SimInputs};
pub use prepared::PreparedLayer;
pub use report::{LayerReport, NetworkReport};
pub use sim::{
    simulate_layer, simulate_layer_prepared, simulate_layer_reference, word_kernel_calls,
};
pub use tag::{NeuronClass, TbTag};
pub use window::WindowPartition;

//! Shared per-layer geometry and spike tables for the simulator.
//!
//! Every policy in [`crate::sim`] walks the same iteration space: output
//! positions, their receptive fields, and the input's spike activity
//! viewed either per time point or per time window. Before this module
//! existed each policy recomputed `receptive_field_indices` at every
//! position and built its own popcount tables inline; now the geometry
//! is computed once per `simulate_layer` call and shared read-only by
//! every worker of the parallel position scan.
//!
//! The popcount tables are deliberately wider than the hardware needs:
//! a window's spike count is bounded by the window length, and the
//! simulator accepts partitions far longer than the accelerator's
//! 64-point packed-word limit (e.g. when studying window geometry in
//! isolation). `u16` entries keep counts exact up to 65 535 time points
//! per window, where the previous `u8` table silently truncated beyond
//! 255.

use snn_core::shape::ConvShape;
use snn_core::spike::SpikeTensor;

use crate::window::WindowPartition;

/// Precomputed receptive-field geometry of one layer: the input-neuron
/// indices feeding every output position, in the simulator's canonical
/// position order (`x` major, `y` minor — position `p = x · E + y`).
#[derive(Debug, Clone)]
pub struct LayerGeometry {
    side: usize,
    rf: Vec<Vec<usize>>,
    rf_total: u64,
}

impl LayerGeometry {
    /// Builds the geometry for `shape`, visiting positions in the same
    /// `x`-major order the serial simulator historically used.
    pub fn new(shape: ConvShape) -> Self {
        let e = shape.ofmap_side();
        let side = e as usize;
        let mut rf = Vec::with_capacity(side * side);
        let mut rf_total = 0u64;
        for x in 0..e {
            for y in 0..e {
                let indices = shape.receptive_field_indices(x, y);
                rf_total += indices.len() as u64;
                rf.push(indices);
            }
        }
        LayerGeometry { side, rf, rf_total }
    }

    /// Output feature-map side `E`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of output positions, `E²`.
    pub fn positions(&self) -> usize {
        self.rf.len()
    }

    /// Receptive field of position `p` (`p = x · E + y`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn rf(&self, p: usize) -> &[usize] {
        &self.rf[p]
    }

    /// Receptive-field length of position `p`. With padding, edge
    /// positions have shorter fields than interior ones.
    pub fn rf_len(&self, p: usize) -> u64 {
        self.rf[p].len() as u64
    }

    /// Total taps across all positions, `Σ_p |RF(p)|` — the layer's true
    /// tap count, exact even when padding makes the per-position lengths
    /// uneven.
    pub fn rf_total(&self) -> u64 {
        self.rf_total
    }

    /// Longest receptive field among positions `p0..p1` (a position
    /// tile). Zero for an empty range.
    pub fn max_rf_len(&self, p0: usize, p1: usize) -> u64 {
        (p0..p1.min(self.rf.len()))
            .map(|p| self.rf_len(p))
            .max()
            .unwrap_or(0)
    }
}

/// Per-(neuron, window) spike counts of `input` under `part`, row-major
/// by neuron: entry `n · W + w` is the number of spikes neuron `n` fires
/// inside window `w`.
///
/// Counts are `u16`, exact for windows up to 65 535 time points; the
/// previous inline `u8` table truncated any window longer than 255
/// points (the accelerator itself caps packed words at 64 bits, but the
/// analysis path does not).
///
/// The build is word-parallel: windows of 64 points or fewer are read
/// as one funnel-shifted [`SpikeTensor::spike_word`] and popcounted;
/// `TWS = 1` walks only the *set* bits of each storage word (a sparse
/// tensor fills its per-point table in `O(spikes)` rather than
/// `O(N · T)` stores); longer windows fall back to the word-wise
/// [`SpikeTensor::popcount_range`].
///
/// # Panics
///
/// Panics if `part` does not cover exactly `input.timesteps()` points,
/// or if a window is longer than `u16::MAX` time points.
pub fn window_popcounts(input: &SpikeTensor, part: &WindowPartition) -> Vec<u16> {
    assert_eq!(
        part.timesteps(),
        input.timesteps(),
        "partition must cover the input's operational period"
    );
    let n_w = part.num_windows();
    let tw = part.tw_size();
    let mut pops = vec![0u16; input.neurons() * n_w];
    for n in 0..input.neurons() {
        let base = n * n_w;
        if tw == 1 {
            // Per-point windows: the count of window `t` is the spike
            // bit at `t`, so only set bits need a store.
            for (wi, &word) in input.neuron_words(n).iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let t = wi * 64 + word.trailing_zeros() as usize;
                    pops[base + t] = 1;
                    word &= word - 1;
                }
            }
        } else if tw <= 64 {
            for (w, s, e) in part.iter() {
                pops[base + w] = input.spike_word(n, s, e - s).count_ones() as u16;
            }
        } else {
            for (w, s, e) in part.iter() {
                pops[base + w] = u16::try_from(input.popcount_range(n, s, e))
                    .expect("window spike count must fit u16");
            }
        }
    }
    pops
}

/// Per-neuron *window-activity* bitmaps: bit `w` of neuron `n`'s words
/// (packed 64 windows per `u64`, little-endian) is set iff `pops[n·W+w]`
/// is nonzero — i.e. the neuron's TB-tag over the whole partition. This
/// is the table the bit-parallel PTB gather scans: one word test covers
/// 64 windows, and a column tile's tag mask is two funnel shifts
/// ([`tag_mask`]) instead of a per-window walk.
///
/// Bits past the last window are always clear (the same tail invariant
/// [`SpikeTensor`] keeps), so whole-word tests never see garbage.
///
/// # Panics
///
/// Panics if `pops` has the wrong length for `input` under `part`.
pub fn window_tags(input: &SpikeTensor, part: &WindowPartition, pops: &[u16]) -> Vec<u64> {
    let n_w = part.num_windows();
    assert_eq!(
        pops.len(),
        input.neurons() * n_w,
        "popcount table must match the partition"
    );
    if part.tw_size() == 1 {
        // Per-point windows: window `w` is active iff time point `w`
        // carries a spike, so the tags are the tensor's own words.
        return input.words().to_vec();
    }
    let tag_words = n_w.div_ceil(64);
    let mut tags = vec![0u64; input.neurons() * tag_words];
    for n in 0..input.neurons() {
        let base = n * n_w;
        let tag_base = n * tag_words;
        for w in 0..n_w {
            if pops[base + w] > 0 {
                tags[tag_base + w / 64] |= 1 << (w % 64);
            }
        }
    }
    tags
}

/// Extracts windows `w0..w1` (at most 128) of neuron `n`'s tag bits
/// from a [`window_tags`] table with `tag_words` words per neuron,
/// packed little-endian (bit `i` = window `w0 + i`). Reads at most
/// three words; bits past the table read as zero.
///
/// # Panics
///
/// Panics (in debug builds) if the span exceeds 128 windows.
#[inline]
pub fn tag_mask(tags: &[u64], tag_words: usize, n: usize, w0: usize, w1: usize) -> u128 {
    debug_assert!(
        w0 < w1 && w1 - w0 <= 128,
        "tag span must be 1..=128 windows"
    );
    let nw = w1 - w0;
    let base = n * tag_words;
    let word = |i: usize| -> u64 {
        if i < tag_words {
            tags[base + i]
        } else {
            0
        }
    };
    let first = w0 / 64;
    let shift = w0 % 64;
    let lo = u128::from(word(first)) | (u128::from(word(first + 1)) << 64);
    let mut out = lo >> shift;
    if shift > 0 {
        out |= u128::from(word(first + 2)) << (128 - shift);
    }
    if nw < 128 {
        out &= (1u128 << nw) - 1;
    }
    out
}

/// Per-(neuron, time point) spike bits of `input`, row-major by neuron:
/// entry `n · T + t` is 1 iff neuron `n` fires at time `t`.
///
/// This dense table was the hot-path representation before the
/// bit-parallel kernel; it is retained as the *serial per-bit
/// reference* — [`crate::sim::simulate_layer_reference`] streams from
/// it, and the equivalence tests pin the word kernel against it.
pub fn spike_bits(input: &SpikeTensor) -> Vec<u8> {
    let t = input.timesteps();
    let mut bits = vec![0u8; input.neurons() * t];
    for n in 0..input.neurons() {
        let base = n * t;
        for tp in 0..t {
            bits[base + tp] = u8::from(input.get(n, tp));
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_shape_queries() {
        let shape = ConvShape::with_padding(6, 3, 2, 4, 1, 1).unwrap();
        let geo = LayerGeometry::new(shape);
        let e = shape.ofmap_side();
        assert_eq!(geo.side(), e as usize);
        assert_eq!(geo.positions(), (e as usize).pow(2));
        let mut total = 0u64;
        for x in 0..e {
            for y in 0..e {
                let p = (x * e + y) as usize;
                let expect = shape.receptive_field_indices(x, y);
                assert_eq!(geo.rf(p), expect.as_slice(), "position ({x},{y})");
                total += expect.len() as u64;
            }
        }
        assert_eq!(geo.rf_total(), total);
    }

    #[test]
    fn padded_geometry_has_uneven_fields() {
        let shape = ConvShape::with_padding(6, 3, 2, 4, 1, 1).unwrap();
        let geo = LayerGeometry::new(shape);
        // Corner position sees a cropped field, interior sees the full one.
        assert!(geo.rf_len(0) < shape.receptive_field() as u64);
        let e = geo.side();
        let interior = e + 1; // (1, 1)
        assert_eq!(geo.rf_len(interior), shape.receptive_field() as u64);
        assert!(geo.max_rf_len(0, geo.positions()) == shape.receptive_field() as u64);
        // The total is NOT divisible by the position count — the case an
        // integer mean silently truncates.
        assert_ne!(geo.rf_total() % geo.positions() as u64, 0);
    }

    #[test]
    fn window_popcounts_survive_large_windows() {
        // Regression: a neuron firing at every one of 300 points in a
        // single 300-point window must count 300, not 300 mod 256 = 44
        // (the old `u8` table's silent truncation).
        let t = 300;
        let input = SpikeTensor::from_fn(2, t, |n, _| n == 0);
        let part = WindowPartition::new(t, t);
        let pops = window_popcounts(&input, &part);
        assert_eq!(pops, vec![300u16, 0]);
        assert!(pops[0] > u64::from(u8::MAX) as u16);
    }

    #[test]
    fn window_popcounts_match_popcount_range() {
        let input = SpikeTensor::from_fn(5, 37, |n, t| (n * 7 + t * 3) % 4 == 0);
        let part = WindowPartition::new(37, 8);
        let pops = window_popcounts(&input, &part);
        for n in 0..5 {
            for (w, s, e) in part.iter() {
                assert_eq!(
                    u32::from(pops[n * part.num_windows() + w]),
                    input.popcount_range(n, s, e)
                );
            }
        }
    }

    #[test]
    fn window_tags_mark_exactly_the_active_windows() {
        for (t, tw) in [(37usize, 8usize), (300, 4), (70, 1), (130, 64)] {
            let input = SpikeTensor::from_fn(6, t, |n, tp| (n * 13 + tp * 5) % 23 == 0);
            let part = WindowPartition::new(t, tw);
            let n_w = part.num_windows();
            let pops = window_popcounts(&input, &part);
            let tags = window_tags(&input, &part, &pops);
            let tag_words = n_w.div_ceil(64);
            assert_eq!(tags.len(), 6 * tag_words);
            for n in 0..6 {
                for w in 0..n_w {
                    let bit = tags[n * tag_words + w / 64] >> (w % 64) & 1 == 1;
                    assert_eq!(
                        bit,
                        pops[n * n_w + w] > 0,
                        "neuron {n} window {w} (t={t} tw={tw})"
                    );
                }
                // Tail invariant: bits past the last window stay clear.
                if !n_w.is_multiple_of(64) {
                    assert_eq!(tags[n * tag_words + tag_words - 1] >> (n_w % 64), 0);
                }
            }
        }
    }

    #[test]
    fn tag_mask_matches_per_window_walk() {
        // Every (start, span) alignment against a per-window rebuild,
        // including spans that straddle tag-word boundaries and spans
        // running past the last window (must read as zero).
        let t = 260;
        let input = SpikeTensor::from_fn(4, t, |n, tp| (n * 31 + tp * 7) % 19 == 0);
        let part = WindowPartition::new(t, 2); // 130 windows: 3 tag words
        let n_w = part.num_windows();
        let pops = window_popcounts(&input, &part);
        let tags = window_tags(&input, &part, &pops);
        let tag_words = n_w.div_ceil(64);
        for n in 0..4 {
            for w0 in (0..n_w).step_by(3) {
                for span in [1usize, 7, 63, 64, 65, 127, 128] {
                    let w1 = (w0 + span).min(w0 + 128);
                    let got = tag_mask(&tags, tag_words, n, w0, w1);
                    let mut expect = 0u128;
                    for (i, w) in (w0..w1).enumerate() {
                        if w < n_w && pops[n * n_w + w] > 0 {
                            expect |= 1 << i;
                        }
                    }
                    assert_eq!(got, expect, "neuron {n} windows {w0}..{w1}");
                }
            }
        }
    }

    #[test]
    fn spike_bits_match_tensor() {
        let input = SpikeTensor::from_fn(4, 11, |n, t| (n + t) % 3 == 0);
        let bits = spike_bits(&input);
        for n in 0..4 {
            for t in 0..11 {
                assert_eq!(bits[n * 11 + t] == 1, input.get(n, t));
            }
        }
    }
}

//! Shared per-layer geometry and spike tables for the simulator.
//!
//! Every policy in [`crate::sim`] walks the same iteration space: output
//! positions, their receptive fields, and the input's spike activity
//! viewed either per time point or per time window. Before this module
//! existed each policy recomputed `receptive_field_indices` at every
//! position and built its own popcount tables inline; now the geometry
//! is computed once per `simulate_layer` call and shared read-only by
//! every worker of the parallel position scan.
//!
//! The popcount tables are deliberately wider than the hardware needs:
//! a window's spike count is bounded by the window length, and the
//! simulator accepts partitions far longer than the accelerator's
//! 64-point packed-word limit (e.g. when studying window geometry in
//! isolation). `u16` entries keep counts exact up to 65 535 time points
//! per window, where the previous `u8` table silently truncated beyond
//! 255.

use snn_core::shape::ConvShape;
use snn_core::spike::SpikeTensor;

use crate::window::WindowPartition;

/// Precomputed receptive-field geometry of one layer: the input-neuron
/// indices feeding every output position, in the simulator's canonical
/// position order (`x` major, `y` minor — position `p = x · E + y`).
#[derive(Debug, Clone)]
pub struct LayerGeometry {
    side: usize,
    rf: Vec<Vec<usize>>,
    rf_total: u64,
}

impl LayerGeometry {
    /// Builds the geometry for `shape`, visiting positions in the same
    /// `x`-major order the serial simulator historically used.
    pub fn new(shape: ConvShape) -> Self {
        let e = shape.ofmap_side();
        let side = e as usize;
        let mut rf = Vec::with_capacity(side * side);
        let mut rf_total = 0u64;
        for x in 0..e {
            for y in 0..e {
                let indices = shape.receptive_field_indices(x, y);
                rf_total += indices.len() as u64;
                rf.push(indices);
            }
        }
        LayerGeometry { side, rf, rf_total }
    }

    /// Output feature-map side `E`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of output positions, `E²`.
    pub fn positions(&self) -> usize {
        self.rf.len()
    }

    /// Receptive field of position `p` (`p = x · E + y`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn rf(&self, p: usize) -> &[usize] {
        &self.rf[p]
    }

    /// Receptive-field length of position `p`. With padding, edge
    /// positions have shorter fields than interior ones.
    pub fn rf_len(&self, p: usize) -> u64 {
        self.rf[p].len() as u64
    }

    /// Total taps across all positions, `Σ_p |RF(p)|` — the layer's true
    /// tap count, exact even when padding makes the per-position lengths
    /// uneven.
    pub fn rf_total(&self) -> u64 {
        self.rf_total
    }

    /// Longest receptive field among positions `p0..p1` (a position
    /// tile). Zero for an empty range.
    pub fn max_rf_len(&self, p0: usize, p1: usize) -> u64 {
        (p0..p1.min(self.rf.len()))
            .map(|p| self.rf_len(p))
            .max()
            .unwrap_or(0)
    }
}

/// Per-(neuron, window) spike counts of `input` under `part`, row-major
/// by neuron: entry `n · W + w` is the number of spikes neuron `n` fires
/// inside window `w`.
///
/// Counts are `u16`, exact for windows up to 65 535 time points; the
/// previous inline `u8` table truncated any window longer than 255
/// points (the accelerator itself caps packed words at 64 bits, but the
/// analysis path does not).
///
/// # Panics
///
/// Panics if `part` does not cover exactly `input.timesteps()` points,
/// or if a window is longer than `u16::MAX` time points.
pub fn window_popcounts(input: &SpikeTensor, part: &WindowPartition) -> Vec<u16> {
    assert_eq!(
        part.timesteps(),
        input.timesteps(),
        "partition must cover the input's operational period"
    );
    let n_w = part.num_windows();
    let mut pops = vec![0u16; input.neurons() * n_w];
    for n in 0..input.neurons() {
        let base = n * n_w;
        for (w, s, e) in part.iter() {
            pops[base + w] = u16::try_from(input.popcount_range(n, s, e))
                .expect("window spike count must fit u16");
        }
    }
    pops
}

/// Per-(neuron, time point) spike bits of `input`, row-major by neuron:
/// entry `n · T + t` is 1 iff neuron `n` fires at time `t`. The dense
/// per-point table the time-point-granularity policies stream from.
pub fn spike_bits(input: &SpikeTensor) -> Vec<u8> {
    let t = input.timesteps();
    let mut bits = vec![0u8; input.neurons() * t];
    for n in 0..input.neurons() {
        let base = n * t;
        for tp in 0..t {
            bits[base + tp] = u8::from(input.get(n, tp));
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_shape_queries() {
        let shape = ConvShape::with_padding(6, 3, 2, 4, 1, 1).unwrap();
        let geo = LayerGeometry::new(shape);
        let e = shape.ofmap_side();
        assert_eq!(geo.side(), e as usize);
        assert_eq!(geo.positions(), (e as usize).pow(2));
        let mut total = 0u64;
        for x in 0..e {
            for y in 0..e {
                let p = (x * e + y) as usize;
                let expect = shape.receptive_field_indices(x, y);
                assert_eq!(geo.rf(p), expect.as_slice(), "position ({x},{y})");
                total += expect.len() as u64;
            }
        }
        assert_eq!(geo.rf_total(), total);
    }

    #[test]
    fn padded_geometry_has_uneven_fields() {
        let shape = ConvShape::with_padding(6, 3, 2, 4, 1, 1).unwrap();
        let geo = LayerGeometry::new(shape);
        // Corner position sees a cropped field, interior sees the full one.
        assert!(geo.rf_len(0) < shape.receptive_field() as u64);
        let e = geo.side();
        let interior = e + 1; // (1, 1)
        assert_eq!(geo.rf_len(interior), shape.receptive_field() as u64);
        assert!(geo.max_rf_len(0, geo.positions()) == shape.receptive_field() as u64);
        // The total is NOT divisible by the position count — the case an
        // integer mean silently truncates.
        assert_ne!(geo.rf_total() % geo.positions() as u64, 0);
    }

    #[test]
    fn window_popcounts_survive_large_windows() {
        // Regression: a neuron firing at every one of 300 points in a
        // single 300-point window must count 300, not 300 mod 256 = 44
        // (the old `u8` table's silent truncation).
        let t = 300;
        let input = SpikeTensor::from_fn(2, t, |n, _| n == 0);
        let part = WindowPartition::new(t, t);
        let pops = window_popcounts(&input, &part);
        assert_eq!(pops, vec![300u16, 0]);
        assert!(pops[0] > u64::from(u8::MAX) as u16);
    }

    #[test]
    fn window_popcounts_match_popcount_range() {
        let input = SpikeTensor::from_fn(5, 37, |n, t| (n * 7 + t * 3) % 4 == 0);
        let part = WindowPartition::new(37, 8);
        let pops = window_popcounts(&input, &part);
        for n in 0..5 {
            for (w, s, e) in part.iter() {
                assert_eq!(
                    u32::from(pops[n * part.num_windows() + w]),
                    input.popcount_range(n, s, e)
                );
            }
        }
    }

    #[test]
    fn spike_bits_match_tensor() {
        let input = SpikeTensor::from_fn(4, 11, |n, t| (n + t) % 3 == 0);
        let bits = spike_bits(&input);
        for n in 0..4 {
            for t in 0..11 {
                assert_eq!(bits[n * 11 + t] == 1, input.get(n, t));
            }
        }
    }
}

//! Reusable per-layer simulation state for incremental re-simulation.
//!
//! A TW or policy sweep re-simulates the same `(shape, activity)` pair
//! many times, but most of what [`crate::sim::simulate_layer`] derives
//! from that pair is invariant across the sweep:
//!
//! * the receptive-field geometry ([`LayerGeometry`]) depends only on
//!   the shape — it never changes across TW *or* policy;
//! * the per-(neuron, window) popcount table
//!   ([`crate::geom::window_popcounts`]) and its packed window-activity
//!   tag words ([`crate::geom::window_tags`]) depend on the activity
//!   and the TW size — invariant across *policies* at a fixed TW.
//!
//! A [`PreparedLayer`] owns the activity tensor and memoizes both, so a
//! sweep rebuilds only what its changed axis actually invalidates:
//! changing the policy rebuilds nothing, changing TW rebuilds only the
//! popcount/tag tables for the new window size (the schedule is
//! re-derived inside the simulator as always). The bit-parallel kernel
//! reads the activity's packed `u64` time words straight from the
//! tensor, so no dense per-point table is memoized anymore.
//!
//! ## Determinism
//!
//! Every memoized table is a *pure function* of the tensor and shape
//! the `PreparedLayer` was constructed with — the memo only skips
//! recomputation, never changes a value. Consequently
//! [`crate::sim::simulate_layer_prepared`] returns a report bit-identical
//! to [`crate::sim::simulate_layer`] on the same `(shape, input)`, for
//! every policy, TW size, and thread count; `prepared_matches_fresh`
//! tests pin this.

use std::sync::{Arc, Mutex, OnceLock};

use snn_core::shape::ConvShape;
use snn_core::spike::SpikeTensor;

use crate::geom::{window_popcounts, window_tags, LayerGeometry};
use crate::window::WindowPartition;

/// One layer's simulation-ready state: the input activity plus lazily
/// built, memoized derived tables (geometry, per-TW window popcounts
/// and packed window tags). Cheap to share across threads and sweep
/// points via [`Arc`]; all interior mutability is memoization only.
#[derive(Debug)]
pub struct PreparedLayer {
    shape: ConvShape,
    spikes: Arc<SpikeTensor>,
    geo: OnceLock<Arc<LayerGeometry>>,
    /// Window popcount + tag tables keyed by TW size, most recent last.
    /// The activity and period are fixed at construction, so TW size
    /// alone identifies a table pair. Bounded to [`POPCOUNT_MEMO_CAP`]
    /// entries (FIFO eviction): a popcount table costs
    /// `neurons · ceil(T/TWS) · 2` bytes — ~90 MB for AlexNet CONV1 at
    /// TWS = 1 — so holding a full 7-point TW sweep per layer would
    /// dominate memory for no benefit (sweeps revisit at most the
    /// current and neighboring TW sizes).
    pops: Mutex<Vec<(usize, WindowTables)>>,
}

/// The pair of per-TW derived tables the simulator consumes: the
/// per-(neuron, window) spike counts and the bit-packed window-activity
/// tags the bit-parallel gather scans (64 windows per word).
#[derive(Debug, Clone)]
pub struct WindowTables {
    /// Per-(neuron, window) spike counts ([`crate::geom::window_popcounts`]).
    pub pops: Arc<Vec<u16>>,
    /// Packed per-neuron window-activity bits ([`crate::geom::window_tags`]).
    pub tags: Arc<Vec<u64>>,
}

/// Maximum distinct TW sizes memoized per layer (see
/// [`PreparedLayer::window_popcounts`]).
pub const POPCOUNT_MEMO_CAP: usize = 4;

impl PreparedLayer {
    /// Wraps `spikes` as the activity of a layer shaped `shape`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor's neuron count does not match the shape's
    /// ifmap, or the period is zero — the same preconditions
    /// [`crate::sim::simulate_layer`] asserts.
    pub fn new(shape: ConvShape, spikes: Arc<SpikeTensor>) -> Self {
        assert_eq!(
            spikes.neurons(),
            shape.ifmap_neurons(),
            "activity tensor must match the layer's ifmap"
        );
        assert!(spikes.timesteps() > 0, "operational period must be nonzero");
        PreparedLayer {
            shape,
            spikes,
            geo: OnceLock::new(),
            pops: Mutex::new(Vec::new()),
        }
    }

    /// The layer shape this state was prepared for.
    pub fn shape(&self) -> ConvShape {
        self.shape
    }

    /// The input spike activity.
    pub fn spikes(&self) -> &Arc<SpikeTensor> {
        &self.spikes
    }

    /// The receptive-field geometry, built on first use and shared
    /// thereafter (TW- and policy-invariant).
    pub fn geometry(&self) -> Arc<LayerGeometry> {
        self.geo
            .get_or_init(|| Arc::new(LayerGeometry::new(self.shape)))
            .clone()
    }

    /// The per-(neuron, window) popcount table for windows of `tw_size`
    /// time points (see [`PreparedLayer::window_tables`]).
    ///
    /// # Panics
    ///
    /// Panics if `tw_size` is zero (via [`WindowPartition::new`]).
    pub fn window_popcounts(&self, tw_size: usize) -> Arc<Vec<u16>> {
        self.window_tables(tw_size).pops
    }

    /// The popcount + packed-tag table pair for windows of `tw_size`
    /// time points, built on first use per TW size (at most
    /// [`POPCOUNT_MEMO_CAP`] sizes retained, oldest evicted first).
    /// Changing only the TW therefore costs at most one popcount/tag
    /// pass — the activity tensor and geometry are reused as-is.
    ///
    /// # Panics
    ///
    /// Panics if `tw_size` is zero (via [`WindowPartition::new`]).
    pub fn window_tables(&self, tw_size: usize) -> WindowTables {
        if let Some((_, hit)) = self
            .pops
            .lock()
            .expect("popcount memo lock")
            .iter()
            .find(|(tw, _)| *tw == tw_size)
        {
            return hit.clone();
        }
        // Build outside the lock: popcount passes over big layers are
        // slow, and concurrent callers ask for *different* TW sizes in
        // practice (one sweep point at a time). A racing duplicate for
        // the same TW computes an identical table; first insert wins.
        let part = WindowPartition::new(self.spikes.timesteps(), tw_size);
        let pops = Arc::new(window_popcounts(&self.spikes, &part));
        let tags = Arc::new(window_tags(&self.spikes, &part, &pops));
        let built = WindowTables { pops, tags };
        let mut memo = self.pops.lock().expect("popcount memo lock");
        if let Some((_, hit)) = memo.iter().find(|(tw, _)| *tw == tw_size) {
            return hit.clone();
        }
        if memo.len() == POPCOUNT_MEMO_CAP {
            memo.remove(0);
        }
        memo.push((tw_size, built.clone()));
        built
    }

    /// Number of distinct TW sizes currently holding a memoized
    /// popcount table (exposed for cache accounting and tests; never
    /// exceeds [`POPCOUNT_MEMO_CAP`]).
    pub fn memoized_tw_sizes(&self) -> usize {
        self.pops.lock().expect("popcount memo lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep() -> PreparedLayer {
        let shape = ConvShape::new(6, 3, 2, 4, 1).unwrap();
        let spikes = SpikeTensor::from_fn(shape.ifmap_neurons(), 40, |n, t| (n + 3 * t) % 7 == 0);
        PreparedLayer::new(shape, Arc::new(spikes))
    }

    #[test]
    fn memoized_tables_match_fresh_computation() {
        let p = prep();
        let geo = LayerGeometry::new(p.shape());
        assert_eq!(p.geometry().rf_total(), geo.rf_total());
        assert_eq!(p.geometry().positions(), geo.positions());
        for tw in [1usize, 4, 8, 64] {
            let part = WindowPartition::new(40, tw);
            let pops = window_popcounts(p.spikes(), &part);
            let tbl = p.window_tables(tw);
            assert_eq!(*tbl.pops, pops);
            assert_eq!(*tbl.tags, window_tags(p.spikes(), &part, &pops));
            assert_eq!(*p.window_popcounts(tw), pops);
        }
        assert_eq!(p.memoized_tw_sizes(), 4);
    }

    #[test]
    fn repeated_lookups_share_one_table() {
        let p = prep();
        let a = p.window_popcounts(8);
        let b = p.window_popcounts(8);
        assert!(Arc::ptr_eq(&a, &b), "same TW must share one table");
        assert!(
            Arc::ptr_eq(&p.window_tables(8).tags, &p.window_tables(8).tags),
            "same TW must share one tag table"
        );
        assert_eq!(p.memoized_tw_sizes(), 1);
        assert!(Arc::ptr_eq(&p.geometry(), &p.geometry()));
    }

    #[test]
    #[should_panic]
    fn mismatched_tensor_rejected() {
        let shape = ConvShape::new(6, 3, 2, 4, 1).unwrap();
        PreparedLayer::new(shape, Arc::new(SpikeTensor::new(3, 8)));
    }
}
